open Fdb_relational

type bound = { value : Value.t; inclusive : bool }

type path =
  | Point_lookup of Value.t
  | Range_scan of { lo : bound option; hi : bound option }
  | Full_scan

type t = { path : path; residual : Ast.pred }

(* Flatten the top-level [And] spine into a conjunct list; [True] conjuncts
   vanish.  Disjunctions and negations stay opaque (a single conjunct). *)
let conjuncts pred =
  let rec go acc = function
    | Ast.And (a, b) -> go (go acc a) b
    | Ast.True -> acc
    | p -> p :: acc
  in
  List.rev (go [] pred)

let conjoin = function
  | [] -> Ast.True
  | p :: rest -> List.fold_left (fun acc q -> Ast.And (acc, q)) p rest

let key_column schema =
  match Schema.columns schema with
  | (name, _) :: _ -> name
  | [] -> assert false (* Schema.make rejects empty column lists *)

(* Tighter of two bounds of the same side.  [keep_gt] chooses the greater
   value (lower bounds tighten upward), its negation the smaller (upper
   bounds tighten downward); at equal values the exclusive bound wins. *)
let tighten ~keep_gt cur cand =
  match cur with
  | None -> Some cand
  | Some b ->
      let c = Value.compare cand.value b.value in
      if c = 0 then
        Some (if b.inclusive then cand else b)
      else if (c > 0) = keep_gt then Some cand
      else Some b

let analyze schema pred =
  let key = key_column schema in
  let atoms = conjuncts pred in
  (* First pass: a key-equality atom makes the path a point lookup and every
     other conjunct residual (further bounds would be redundant next to a
     single-key probe, and a contradictory one falsifies the residual). *)
  let rec find_eq seen = function
    | [] -> None
    | Ast.Cmp (col, Ast.Eq, v) :: rest when String.equal col key ->
        Some (v, List.rev_append seen rest)
    | atom :: rest -> find_eq (atom :: seen) rest
  in
  match find_eq [] atoms with
  | Some (v, rest) -> { path = Point_lookup v; residual = conjoin rest }
  | None ->
      let lo = ref None and hi = ref None and residual = ref [] in
      List.iter
        (fun atom ->
          match atom with
          | Ast.Cmp (col, op, v) when String.equal col key -> (
              match op with
              | Ast.Gt -> lo := tighten ~keep_gt:true !lo { value = v; inclusive = false }
              | Ast.Ge -> lo := tighten ~keep_gt:true !lo { value = v; inclusive = true }
              | Ast.Lt -> hi := tighten ~keep_gt:false !hi { value = v; inclusive = false }
              | Ast.Le -> hi := tighten ~keep_gt:false !hi { value = v; inclusive = true }
              | Ast.Eq | Ast.Ne -> residual := atom :: !residual)
          | _ -> residual := atom :: !residual)
        atoms;
      let residual = conjoin (List.rev !residual) in
      (match (!lo, !hi) with
      | (None, None) -> { path = Full_scan; residual }
      | (lo, hi) -> { path = Range_scan { lo; hi }; residual })

let pp_bound side ppf = function
  | None -> Format.pp_print_string ppf (if side = `Lo then "-inf" else "+inf")
  | Some { value; inclusive } ->
      let op =
        match (side, inclusive) with
        | (`Lo, true) -> ">="
        | (`Lo, false) -> ">"
        | (`Hi, true) -> "<="
        | (`Hi, false) -> "<"
      in
      Format.fprintf ppf "key %s %a" op Value.pp value

let pp_path ppf = function
  | Point_lookup v -> Format.fprintf ppf "point lookup key = %a" Value.pp v
  | Range_scan { lo; hi } ->
      Format.fprintf ppf "range scan [%a, %a]" (pp_bound `Lo) lo
        (pp_bound `Hi) hi
  | Full_scan -> Format.pp_print_string ppf "full scan"

let pp ppf { path; residual } =
  pp_path ppf path;
  match residual with
  | Ast.True -> ()
  | p -> Format.fprintf ppf "; residual %a" Ast.pp_pred p

let to_string plan = Format.asprintf "%a" pp plan

let explain ~schema_of query =
  let planned verb rel where extra =
    match schema_of rel with
    | None -> Format.asprintf "%s %s: unknown relation" verb rel
    | Some schema ->
        Format.asprintf "%s %s: %a%s" verb rel pp (analyze schema where) extra
  in
  match query with
  | Ast.Select { rel; cols; where } ->
      let extra =
        match cols with
        | None -> ""
        | Some cs -> "; project " ^ String.concat ", " cs
      in
      planned "select" rel where extra
  | Ast.Count { rel; where } -> (
      match where with
      | Ast.True -> Format.asprintf "count %s: size accessor" rel
      | _ -> planned "count" rel where "")
  | Ast.Aggregate { rel; where; _ } -> planned "aggregate" rel where ""
  | Ast.Update { rel; where; _ } -> planned "update" rel where ""
  | Ast.Find { rel; key } ->
      Format.asprintf "find %s: point lookup key = %s" rel
        (Format.asprintf "%a" Value.pp key)
  | Ast.Insert { rel; _ } -> Format.asprintf "insert %s: ordered insert" rel
  | Ast.Delete { rel; key } ->
      Format.asprintf "delete %s: point delete key = %s" rel
        (Format.asprintf "%a" Value.pp key)
  | Ast.Join { left; right; _ } ->
      Format.asprintf "join %s x %s: hash join (build %s, probe %s)" left
        right right left
