open Fdb_net
module Ast = Fdb_query.Ast

type t = {
  topology : Topology.t;
  primary : int;
  semantics : Pipeline.semantics;
  mode : Pipeline.mode;
  spec : Pipeline.db_spec;
}

let create ?topology ?(primary = 0) ?(semantics = Pipeline.Prepend)
    ?(mode = Pipeline.Ideal) spec =
  let topology =
    match topology with Some t -> t | None -> Topology.bus 4
  in
  { topology; primary; semantics; mode; spec }

type outcome = {
  merged : (int * Ast.query) list;
  per_site : (int * Pipeline.response list) list;
  report : Pipeline.report;
  request_messages : int;
  response_messages : int;
  transport_cycles : int;
}

(* Drive a fabric until quiescent, collecting deliveries in order. *)
let drain fabric =
  let deliveries = ref [] and cycles = ref 0 in
  while Fabric.in_flight fabric > 0 do
    deliveries := !deliveries @ Fabric.step fabric;
    incr cycles
  done;
  (!deliveries, !cycles)

(* The request trip: every site injects one query per cycle toward the
   primary; the medium's delivery order is the merge. *)
let merge_requests cluster sessions =
  let fabric = Fabric.create cluster.topology in
  let remaining = List.map (fun (s, qs) -> (s, ref qs)) sessions in
  let arrivals = ref [] and cycles = ref 0 in
  let pending () =
    List.exists (fun (_, qs) -> !qs <> []) remaining
    || Fabric.in_flight fabric > 0
  in
  while pending () do
    List.iter
      (fun (site, qs) ->
        match !qs with
        | [] -> ()
        | q :: rest ->
            qs := rest;
            Fabric.send fabric ~src:site ~dst:cluster.primary (site, q))
      remaining;
    arrivals := !arrivals @ Fabric.step fabric;
    incr cycles
  done;
  (List.map snd !arrivals, !cycles)

let submit cluster sessions =
  let n = Topology.size cluster.topology in
  List.iter
    (fun (site, _) ->
      if site < 0 || site >= n then
        invalid_arg "Cluster.submit: site outside the topology";
      if site = cluster.primary then
        invalid_arg "Cluster.submit: clients must not sit on the primary")
    sessions;
  let (merged, request_cycles) = merge_requests cluster sessions in
  let request_messages = List.length merged in
  (* Process the merged stream on the lenient pipeline. *)
  let report =
    Pipeline.run ~semantics:cluster.semantics ~mode:cluster.mode cluster.spec
      merged
  in
  (* Response trip: the primary sends each tagged response home; each site
     chooses its own substream. *)
  let back = Fabric.create cluster.topology in
  List.iter
    (fun (site, resp) ->
      Fabric.send back ~src:cluster.primary ~dst:site (site, resp))
    report.Pipeline.responses;
  let (returned, response_cycles) = drain back in
  let per_site =
    List.map
      (fun (site, _) ->
        ( site,
          List.filter_map
            (fun (_, (tag, resp)) -> if tag = site then Some resp else None)
            returned ))
      sessions
  in
  {
    merged;
    per_site;
    report;
    request_messages;
    response_messages = List.length returned;
    transport_cycles = request_cycles + response_cycles;
  }

type failover = {
  f_merged : (int * Ast.query) list;
  f_served_before_crash : Pipeline.response list;
  f_replayed : Pipeline.response list;
  f_prefix_agrees : bool;
  f_per_site : (int * Pipeline.response list) list;
}

let submit_with_failover cluster ~fail_after sessions =
  if fail_after < 0 then
    invalid_arg "Cluster.submit_with_failover: fail_after < 0";
  let (merged, _) = merge_requests cluster sessions in
  let n = List.length merged in
  let k = min fail_after n in
  let prefix = List.filteri (fun i _ -> i < k) merged in
  (* The primary answers the prefix, then crashes. *)
  let primary_run =
    Pipeline.run ~semantics:cluster.semantics ~mode:cluster.mode cluster.spec
      prefix
  in
  let served = List.map snd primary_run.Pipeline.responses in
  (* The standby replays the whole merged stream from the initial
     database: same stream, same versions, same answers. *)
  let standby_run =
    Pipeline.run ~semantics:cluster.semantics ~mode:cluster.mode cluster.spec
      merged
  in
  let all_responses = standby_run.Pipeline.responses in
  let replayed =
    List.filteri (fun i _ -> i < k) (List.map snd all_responses)
  in
  let f_prefix_agrees =
    List.for_all2 Pipeline.response_equal served replayed
  in
  (* Clients receive the prefix from the primary and the suffix from the
     standby; by determinism that equals the standby's full answer set. *)
  let f_per_site =
    List.map
      (fun (site, _) ->
        ( site,
          List.filter_map
            (fun (tag, r) -> if tag = site then Some r else None)
            all_responses ))
      sessions
  in
  {
    f_merged = merged;
    f_served_before_crash = served;
    f_replayed = replayed;
    f_prefix_agrees;
    f_per_site;
  }

let serializable outcome cluster =
  let reference =
    Pipeline.reference ~semantics:cluster.semantics cluster.spec
      outcome.merged
  in
  List.for_all2
    (fun (t1, r1) (t2, r2) -> t1 = t2 && Pipeline.response_equal r1 r2)
    outcome.report.Pipeline.responses reference
