(** Transactions as functions (paper §2.1):

    {v transaction : databases -> responses x databases v}

    [translate] turns a symbolic query into such a function — the
    higher-order compilation step the paper highlights.  [apply_stream]
    applies a stream of transactions to the stream of database versions,
    returning the response stream and all intermediate versions (the
    "stream of databases" view of §6).

    This module is the {e sequential reference} semantics: set-semantic
    relations with schema checking, any persistent backend.  The lenient,
    task-graph execution of the same queries lives in the core library and
    is checked against this one. *)

open Fdb_relational

type response =
  | Inserted of bool  (** false: duplicate key, database unchanged *)
  | Found of Tuple.t option
  | Deleted of bool
  | Selected of Tuple.t list
  | Counted of int
  | Aggregated of Value.t option  (** sum/min/max result; None when empty *)
  | Updated of int  (** rows rewritten *)
  | Joined of Tuple.t list  (** concatenated matching pairs *)
  | Failed of string  (** unknown relation / column, schema mismatch *)

val response_equal : response -> response -> bool

val pp_response : Format.formatter -> response -> unit

type t = Database.t -> response * Database.t
(** A transaction.  Read-only queries return their argument database
    physically unchanged. *)

val translate : Fdb_query.Ast.query -> t
(** Compile a query.  Never raises: semantic errors become [Failed]
    responses (and leave the database unchanged). *)

type tracker = {
  read_key : rel:string -> Value.t -> unit;
      (** a point access: key-existence check, point lookup, or delete *)
  read_range :
    rel:string -> lo:Relation.bound option -> hi:Relation.bound option -> unit;
      (** a planner range scan over the key order; [None] = open end *)
  read_all : rel:string -> unit;  (** a full scan of the relation *)
  write : rel:string -> removed:Tuple.t list -> added:Tuple.t list -> unit;
      (** tuples physically removed/added by the transaction — its
          replayable publication *)
}
(** Footprint observation callbacks.  Because a transaction is a pure
    function of its input version, the calls received during one
    application are exactly its data dependencies (reads) and its
    publication (writes) — the raw material for speculative conflict
    analysis in [lib/repair]. *)

val translate_tracked : tracker -> Fdb_query.Ast.query -> t
(** Like {!val:translate}, but reporting every read span and write effect
    to [tracker] during application.  Observationally identical to the
    untracked transaction: same response, same output database.  [Failed]
    outcomes report nothing (they are database-independent). *)

val translate_indexed :
  ?tracker:tracker -> Fdb_index.Index.Session.use -> Fdb_query.Ast.query -> t
(** Like {!val:translate} with an index session in force: selects, counts
    and aggregates may be answered through the session's secondary,
    covering or derived indexes (observationally identical to the plain
    translation), and — when the session use has maintenance enabled —
    every write advances the session's indexes in lockstep with the base
    relation.  Indexed reads report a conservative whole-relation read to
    [tracker]. *)

val translate_string : string -> (t, string) result
(** Parse then translate. *)

val apply_stream : t list -> Database.t -> response list * Database.t list
(** [apply_stream txns db0] returns the responses and the versions
    [db1 .. dbn] (one per transaction). *)

val run_queries :
  Database.t -> Fdb_query.Ast.query list -> response list * Database.t
(** Convenience: translate then apply, keeping only the final version. *)
