lib/relational/relation.ml: Avl Btree Fdb_persistent Format List Plist Printf Schema Tuple Two3 Value
