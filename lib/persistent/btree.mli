(** Persistent B-trees with an explicit page model.

    Section 3.3 of the paper argues that when "the size of a tree node is
    one physical page", rebuilding the O(log n) pages on the path from the
    root costs little next to the page-transit time, and Figure 2-2 shows an
    update producing a new directory that shares every unmodified page with
    the old one.  Every node here (leaf or directory) is one page;
    {!val:shared_pages} measures exactly the figure's claim. *)

module Make (Elt : Ordered.S) : sig
  type t

  val create : ?branching:int -> unit -> t
  (** [branching] is the maximum number of children per directory page
      (default 8; minimum 3).  Pages hold at most [branching - 1] keys. *)

  val branching : t -> int

  val of_list : ?branching:int -> Elt.t list -> t

  val to_list : t -> Elt.t list

  val size : t -> int

  val height : t -> int

  val page_count : t -> int

  val member : Elt.t -> t -> bool

  val find : Elt.t -> t -> Elt.t option

  val range : lo:Elt.t -> hi:Elt.t -> t -> Elt.t list
  (** Elements [x] with [lo <= x <= hi], ascending. *)

  val fold : ?meter:Meter.t -> ('a -> Elt.t -> 'a) -> 'a -> t -> 'a
  (** In-order fold without materializing a list.  Meters one unit per page
      visited. *)

  val iter : (Elt.t -> unit) -> t -> unit

  val range_fold :
    ?meter:Meter.t ->
    ge_lo:(Elt.t -> bool) ->
    le_hi:(Elt.t -> bool) ->
    ('a -> Elt.t -> 'a) ->
    'a ->
    t ->
    'a
  (** In-order fold over the elements satisfying both bound predicates
      ([ge_lo] upward closed, [le_hi] downward closed).  Pages wholly
      outside the range are pruned; only pages actually visited are
      metered — O(log n + k/B) pages for a k-element range. *)

  val rewrite :
    ?meter:Meter.t ->
    ge_lo:(Elt.t -> bool) ->
    le_hi:(Elt.t -> bool) ->
    (Elt.t -> Elt.t option) ->
    t ->
    t * int
  (** Single-traversal bulk update of the in-bounds elements; replacements
      must compare equal to the original so page shapes are preserved and
      untouched pages stay shared.  Returns the replacement count; meters
      one unit per rebuilt page.
      @raise Invalid_argument if a replacement changes the element's order. *)

  val insert : ?meter:Meter.t -> Elt.t -> t -> t
  (** Set semantics; meters one allocation per rebuilt page. *)

  val delete : ?meter:Meter.t -> Elt.t -> t -> t * bool

  val shared_pages : old:t -> t -> int * int
  (** [(shared, total)] over the new version's pages. *)

  val invariant : t -> bool
  (** Uniform leaf depth, key ordering, and page occupancy bounds (root
      exempt from the minimum). *)
end
