lib/fel/parser.ml: Ast Format Lexer List Printf
