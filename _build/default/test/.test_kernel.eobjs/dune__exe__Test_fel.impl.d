test/test_fel.ml: Alcotest Fdb_fel Fdb_kernel Fdb_net Fdb_rediflow Format List Printf QCheck2 QCheck_alcotest String
