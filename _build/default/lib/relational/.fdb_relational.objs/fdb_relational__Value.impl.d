lib/relational/value.ml: Bool Float Format Int String
