open Fdb_kernel

type 'a node =
  | Leaf
  | N2 of 'a t * 'a * 'a t
  | N3 of 'a t * 'a * 'a t * 'a * 'a t

and 'a t = 'a node Engine.ivar

let empty eng = Engine.full eng Leaf

let find eng ?(label = "tree_find") ~cmp x t =
  let result = Engine.ivar eng in
  let rec step t =
    Engine.await ~label t (function
      | Leaf -> Engine.put result None
      | N2 (l, a, r) ->
          let c = cmp x a in
          if c = 0 then Engine.put result (Some a)
          else if c < 0 then step l
          else step r
      | N3 (l, a, m, b, r) ->
          let ca = cmp x a in
          if ca = 0 then Engine.put result (Some a)
          else if ca < 0 then step l
          else
            let cb = cmp x b in
            if cb = 0 then Engine.put result (Some b)
            else if cb < 0 then step m
            else step r)
  in
  step t;
  result

(* Insertion result flowing back up the recursion:
   - [Same]: an equal element exists; the whole old version is shared.
   - [Grown t']: replacement subtree of the same height.
   - [Split (l, m, r)]: the subtree split; the parent absorbs the median. *)
type 'a grow = Same | Grown of 'a t | Split of 'a t * 'a * 'a t

let insert eng ?(label = "tree_insert") ~cmp x t =
  let ack = Engine.ivar eng in
  let full n = Engine.full eng n in
  let rec ins t k =
    Engine.await ~label t (function
      | Leaf ->
          Engine.put ack true;
          k (Split (full Leaf, x, full Leaf))
      | N2 (l, a, r) ->
          let c = cmp x a in
          if c = 0 then begin
            Engine.put ack false;
            k Same
          end
          else if c < 0 then
            ins l (function
              | Same -> k Same
              | Grown l' -> k (Grown (full (N2 (l', a, r))))
              | Split (t1, m, t2) -> k (Grown (full (N3 (t1, m, t2, a, r)))))
          else
            ins r (function
              | Same -> k Same
              | Grown r' -> k (Grown (full (N2 (l, a, r'))))
              | Split (t1, m, t2) -> k (Grown (full (N3 (l, a, t1, m, t2)))))
      | N3 (l, a, m, b, r) ->
          let ca = cmp x a in
          if ca = 0 then begin
            Engine.put ack false;
            k Same
          end
          else if ca < 0 then
            ins l (function
              | Same -> k Same
              | Grown l' -> k (Grown (full (N3 (l', a, m, b, r))))
              | Split (t1, mm, t2) ->
                  k (Split (full (N2 (t1, mm, t2)), a, full (N2 (m, b, r)))))
          else
            let cb = cmp x b in
            if cb = 0 then begin
              Engine.put ack false;
              k Same
            end
            else if cb < 0 then
              ins m (function
                | Same -> k Same
                | Grown m' -> k (Grown (full (N3 (l, a, m', b, r))))
                | Split (t1, mm, t2) ->
                    k (Split (full (N2 (l, a, t1)), mm, full (N2 (t2, b, r)))))
            else
              ins r (function
                | Same -> k Same
                | Grown r' -> k (Grown (full (N3 (l, a, m, b, r'))))
                | Split (t1, mm, t2) ->
                    k (Split (full (N2 (l, a, m)), b, full (N2 (t1, mm, t2)))))
    )
  in
  let root = Engine.ivar eng in
  ins t (fun outcome ->
      match outcome with
      | Same ->
          (* share the old version wholesale *)
          Engine.await ~label t (fun n -> Engine.put root n)
      | Grown t' -> Engine.await ~label t' (fun n -> Engine.put root n)
      | Split (l, m, r) -> Engine.put root (N2 (l, m, r)));
  (root, ack)

let fold_inorder eng ?(label = "tree_fold") f init t =
  let result = Engine.ivar eng in
  (* Continuation-passing traversal; each node costs one task. *)
  let rec go t acc k =
    Engine.await ~label t (function
      | Leaf -> k acc
      | N2 (l, a, r) -> go l acc (fun acc -> go r (f acc a) k)
      | N3 (l, a, m, b, r) ->
          go l acc (fun acc ->
              go m (f acc a) (fun acc -> go r (f acc b) k)))
  in
  go t init (fun acc -> Engine.put result acc);
  result

(* Strict construction at setup: build a pure tree then wrap each node in a
   full cell.  Done with the pure 2-3 insertion algorithm inlined to avoid
   a dependency on fdb_persistent. *)
type 'a pure = PLeaf | P2 of 'a pure * 'a * 'a pure | P3 of 'a pure * 'a * 'a pure * 'a * 'a pure

let of_list eng ~cmp xs =
  let rec pins x t =
    match t with
    | PLeaf -> `Up (PLeaf, x, PLeaf)
    | P2 (l, a, r) ->
        let c = cmp x a in
        if c = 0 then `Done t
        else if c < 0 then (
          match pins x l with
          | `Done l' -> `Done (P2 (l', a, r))
          | `Up (t1, m, t2) -> `Done (P3 (t1, m, t2, a, r)))
        else (
          match pins x r with
          | `Done r' -> `Done (P2 (l, a, r'))
          | `Up (t1, m, t2) -> `Done (P3 (l, a, t1, m, t2)))
    | P3 (l, a, m, b, r) ->
        let ca = cmp x a in
        if ca = 0 then `Done t
        else if ca < 0 then (
          match pins x l with
          | `Done l' -> `Done (P3 (l', a, m, b, r))
          | `Up (t1, mm, t2) -> `Up (P2 (t1, mm, t2), a, P2 (m, b, r)))
        else
          let cb = cmp x b in
          if cb = 0 then `Done t
          else if cb < 0 then (
            match pins x m with
            | `Done m' -> `Done (P3 (l, a, m', b, r))
            | `Up (t1, mm, t2) -> `Up (P2 (l, a, t1), mm, P2 (t2, b, r)))
          else (
            match pins x r with
            | `Done r' -> `Done (P3 (l, a, m, b, r'))
            | `Up (t1, mm, t2) -> `Up (P2 (l, a, m), b, P2 (t1, mm, t2)))
  in
  let pure =
    List.fold_left
      (fun t x ->
        match pins x t with `Done t' -> t' | `Up (l, m, r) -> P2 (l, m, r))
      PLeaf xs
  in
  let rec wrap = function
    | PLeaf -> Engine.full eng Leaf
    | P2 (l, a, r) -> Engine.full eng (N2 (wrap l, a, wrap r))
    | P3 (l, a, m, b, r) ->
        Engine.full eng (N3 (wrap l, a, wrap m, b, wrap r))
  in
  wrap pure

let to_list_now t =
  let exception Incomplete in
  let rec go acc t =
    match Engine.peek t with
    | None -> raise Incomplete
    | Some Leaf -> acc
    | Some (N2 (l, a, r)) -> go (a :: go acc r) l
    | Some (N3 (l, a, m, b, r)) -> go (a :: go (b :: go acc r) m) l
  in
  match go [] t with xs -> Some xs | exception Incomplete -> None

let size_now t =
  let rec go t =
    match Engine.peek t with
    | None | Some Leaf -> 0
    | Some (N2 (l, _, r)) -> 1 + go l + go r
    | Some (N3 (l, _, m, _, r)) -> 2 + go l + go m + go r
  in
  go t
