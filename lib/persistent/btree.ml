module Make (Elt : Ordered.S) = struct
  (* Classic B-tree: elements live in every page.  A directory page with k
     keys has k+1 children. *)
  type node =
    | Leaf of Elt.t array
    | Dir of node array * Elt.t array

  type t = { branching : int; root : node }

  let create ?(branching = 8) () =
    if branching < 3 then invalid_arg "Btree.create: branching < 3";
    { branching; root = Leaf [||] }

  let branching t = t.branching

  let max_keys t = t.branching - 1
  let min_keys t = (t.branching - 1) / 2

  (* -- array helpers ------------------------------------------------------ *)

  let array_insert a i x =
    let n = Array.length a in
    Array.init (n + 1) (fun j ->
        if j < i then a.(j) else if j = i then x else a.(j - 1))

  let array_remove a i =
    let n = Array.length a in
    Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

  let array_set a i x =
    let a' = Array.copy a in
    a'.(i) <- x;
    a'

  (* Position of x among sorted keys: [Found i] or [Child i]. *)
  let locate keys x =
    let n = Array.length keys in
    let rec go i =
      if i >= n then `Child n
      else
        let c = Elt.compare x keys.(i) in
        if c = 0 then `Found i else if c < 0 then `Child i else go (i + 1)
    in
    go 0

  (* -- queries ------------------------------------------------------------ *)

  let rec find_node x = function
    | Leaf keys -> (
        match locate keys x with `Found i -> Some keys.(i) | `Child _ -> None)
    | Dir (children, keys) -> (
        match locate keys x with
        | `Found i -> Some keys.(i)
        | `Child i -> find_node x children.(i))

  let find x t = find_node x t.root
  let member x t = find x t <> None

  let to_list t =
    let rec go acc = function
      | Leaf keys -> Array.fold_right (fun x acc -> x :: acc) keys acc
      | Dir (children, keys) ->
          let n = Array.length keys in
          let acc = ref (go acc children.(n)) in
          for i = n - 1 downto 0 do
            acc := go (keys.(i) :: !acc) children.(i)
          done;
          !acc
    in
    go [] t.root

  let range ~lo ~hi t =
    let rec go acc = function
      | Leaf keys ->
          Array.fold_right
            (fun x acc ->
              if Elt.compare lo x <= 0 && Elt.compare x hi <= 0 then x :: acc
              else acc)
            keys acc
      | Dir (children, keys) ->
          let n = Array.length keys in
          let acc = ref (go acc children.(n)) in
          for i = n - 1 downto 0 do
            let k = keys.(i) in
            let acc' =
              if Elt.compare lo k <= 0 && Elt.compare k hi <= 0 then
                k :: !acc
              else !acc
            in
            (* prune subtrees wholly outside the range *)
            let descend =
              (i = 0 || Elt.compare keys.(i - 1) hi <= 0)
              && Elt.compare lo k <= 0
            in
            acc := if descend then go acc' children.(i) else acc'
          done;
          !acc
    in
    go [] t.root

  let fold ?meter f acc t =
    let rec go acc = function
      | Leaf keys ->
          Meter.alloc meter 1;
          Array.fold_left f acc keys
      | Dir (children, keys) ->
          Meter.alloc meter 1;
          let n = Array.length keys in
          let acc = ref (go acc children.(0)) in
          for i = 0 to n - 1 do
            acc := go (f !acc keys.(i)) children.(i + 1)
          done;
          !acc
    in
    go acc t.root

  let iter f t =
    let rec go = function
      | Leaf keys -> Array.iter f keys
      | Dir (children, keys) ->
          let n = Array.length keys in
          go children.(0);
          for i = 0 to n - 1 do
            f keys.(i);
            go children.(i + 1)
          done
    in
    go t.root

  let range_fold ?meter ~ge_lo ~le_hi f acc t =
    (* Child [i] of a directory holds elements strictly between keys [i-1]
       and [i]; descend only when that open interval can intersect the
       range, so just the boundary paths and in-range pages are visited
       (and metered). *)
    let rec go acc = function
      | Leaf keys ->
          Meter.alloc meter 1;
          Array.fold_left
            (fun acc x -> if ge_lo x && le_hi x then f acc x else acc)
            acc keys
      | Dir (children, keys) ->
          Meter.alloc meter 1;
          let nk = Array.length keys in
          let acc = ref acc in
          for i = 0 to nk do
            let descend =
              (i = nk || ge_lo keys.(i)) && (i = 0 || le_hi keys.(i - 1))
            in
            if descend then acc := go !acc children.(i);
            if i < nk && ge_lo keys.(i) && le_hi keys.(i) then
              acc := f !acc keys.(i)
          done;
          !acc
    in
    go acc t.root

  let rewrite ?meter ~ge_lo ~le_hi f t =
    let count = ref 0 in
    (* Copy-on-first-write over a page's key array; returns the original
       array physically when nothing in it changed. *)
    let rewrite_keys keys =
      let out = ref keys in
      Array.iteri
        (fun i x ->
          if ge_lo x && le_hi x then
            match f x with
            | None -> ()
            | Some y ->
                if Elt.compare y x <> 0 then
                  invalid_arg "Btree.rewrite: replacement reorders element";
                incr count;
                let a = if !out == keys then Array.copy keys else !out in
                a.(i) <- y;
                out := a)
        keys;
      !out
    in
    let rec go = function
      | Leaf keys as whole ->
          let keys' = rewrite_keys keys in
          if keys' == keys then whole
          else begin
            Meter.alloc meter 1;
            Leaf keys'
          end
      | Dir (children, keys) as whole ->
          let keys' = rewrite_keys keys in
          let nk = Array.length keys in
          let children' = ref children in
          for i = 0 to nk do
            let descend =
              (i = nk || ge_lo keys.(i)) && (i = 0 || le_hi keys.(i - 1))
            in
            if descend then begin
              let c = children.(i) in
              let c' = go c in
              if c' != c then begin
                let a =
                  if !children' == children then Array.copy children
                  else !children'
                in
                a.(i) <- c';
                children' := a
              end
            end
          done;
          if keys' == keys && !children' == children then whole
          else begin
            Meter.alloc meter 1;
            Dir (!children', keys')
          end
    in
    let root = go t.root in
    ({ t with root }, !count)

  let rec size_node = function
    | Leaf keys -> Array.length keys
    | Dir (children, keys) ->
        Array.fold_left (fun acc c -> acc + size_node c) (Array.length keys)
          children

  let size t = size_node t.root

  let height t =
    let rec go = function
      | Leaf _ -> 1
      | Dir (children, _) -> 1 + go children.(0)
    in
    go t.root

  let rec pages = function
    | Leaf _ -> 1
    | Dir (children, _) ->
        Array.fold_left (fun acc c -> acc + pages c) 1 children

  let page_count t = pages t.root

  (* -- insertion ----------------------------------------------------------- *)

  type grow = Done of node | Split of node * Elt.t * node

  let split_keys keys =
    let n = Array.length keys in
    let mid = n / 2 in
    (Array.sub keys 0 mid, keys.(mid), Array.sub keys (mid + 1) (n - mid - 1))

  let insert ?meter x t =
    let leaf keys =
      Meter.alloc meter 1;
      Leaf keys
    and dir children keys =
      Meter.alloc meter 1;
      Dir (children, keys)
    in
    let rec ins = function
      | Leaf keys as whole -> (
          match locate keys x with
          | `Found _ -> Done whole
          | `Child i ->
              let keys' = array_insert keys i x in
              if Array.length keys' <= max_keys t then Done (leaf keys')
              else
                let (lk, m, rk) = split_keys keys' in
                Split (leaf lk, m, leaf rk))
      | Dir (children, keys) as whole -> (
          match locate keys x with
          | `Found _ -> Done whole
          | `Child i -> (
              match ins children.(i) with
              | Done c ->
                  if c == children.(i) then Done whole
                  else Done (dir (array_set children i c) keys)
              | Split (a, k, b) ->
                  let keys' = array_insert keys i k in
                  let children' =
                    array_insert (array_set children i a) (i + 1) b
                  in
                  if Array.length keys' <= max_keys t then
                    Done (dir children' keys')
                  else begin
                    let (lk, m, rk) = split_keys keys' in
                    let nl = Array.length lk + 1 in
                    let nc = Array.length children' in
                    Split
                      ( dir (Array.sub children' 0 nl) lk,
                        m,
                        dir (Array.sub children' nl (nc - nl)) rk )
                  end))
    in
    match ins t.root with
    | Done root -> { t with root }
    | Split (a, k, b) ->
        Meter.alloc meter 1;
        { t with root = Dir ([| a; b |], [| k |]) }

  (* -- deletion ------------------------------------------------------------ *)

  let underfull t = function
    | Leaf keys | Dir (_, keys) -> Array.length keys < min_keys t


  (* Repair an underfull child [i] of a directory page by borrowing from or
     merging with an adjacent sibling.  Returns new (children, keys); the
     resulting page may itself be underfull (handled by the caller). *)
  let fix t ?meter children keys i =
    let leaf ks =
      Meter.alloc meter 1;
      Leaf ks
    and dir cs ks =
      Meter.alloc meter 1;
      Dir (cs, ks)
    in
    let merge_or_borrow li ri =
      (* li = left child index; separator keys.(li); ri = li + 1 *)
      let sep = keys.(li) in
      match (children.(li), children.(ri)) with
      | (Leaf lk, Leaf rk) ->
          if Array.length lk > min_keys t && i = ri then
            (* borrow max of left up through the separator *)
            let n = Array.length lk in
            let up = lk.(n - 1) in
            let l' = leaf (Array.sub lk 0 (n - 1)) in
            let r' = leaf (array_insert rk 0 sep) in
            ( array_set (array_set children li l') ri r',
              array_set keys li up )
          else if Array.length rk > min_keys t && i = li then
            let up = rk.(0) in
            let r' = leaf (array_remove rk 0) in
            let l' = leaf (array_insert lk (Array.length lk) sep) in
            ( array_set (array_set children li l') ri r',
              array_set keys li up )
          else
            let merged = leaf (Array.concat [ lk; [| sep |]; rk ]) in
            (array_set (array_remove children ri) li merged,
             array_remove keys li)
      | (Dir (lc, lk), Dir (rc, rk)) ->
          if Array.length lk > min_keys t && i = ri then
            let nk = Array.length lk and nc = Array.length lc in
            let up = lk.(nk - 1) in
            let l' = dir (Array.sub lc 0 (nc - 1)) (Array.sub lk 0 (nk - 1)) in
            let r' =
              dir (array_insert rc 0 lc.(nc - 1)) (array_insert rk 0 sep)
            in
            ( array_set (array_set children li l') ri r',
              array_set keys li up )
          else if Array.length rk > min_keys t && i = li then
            let up = rk.(0) in
            let r' = dir (array_remove rc 0) (array_remove rk 0) in
            let l' =
              dir
                (array_insert lc (Array.length lc) rc.(0))
                (array_insert lk (Array.length lk) sep)
            in
            ( array_set (array_set children li l') ri r',
              array_set keys li up )
          else
            let merged =
              dir (Array.append lc rc) (Array.concat [ lk; [| sep |]; rk ])
            in
            (array_set (array_remove children ri) li merged,
             array_remove keys li)
      | _ -> assert false (* siblings are at the same depth *)
    in
    if i > 0 then merge_or_borrow (i - 1) i else merge_or_borrow i (i + 1)

  (* Remove and return the maximum element. *)
  let rec take_max t ?meter = function
    | Leaf keys ->
        let n = Array.length keys in
        Meter.alloc meter 1;
        (keys.(n - 1), Leaf (Array.sub keys 0 (n - 1)))
    | Dir (children, keys) ->
        let i = Array.length children - 1 in
        let (m, c') = take_max t ?meter children.(i) in
        let children' = array_set children i c' in
        Meter.alloc meter 1;
        if underfull t c' then begin
          let (cs, ks) = fix t ?meter children' keys i in
          (m, Dir (cs, ks))
        end
        else (m, Dir (children', keys))

  let delete ?meter x t =
    let rec del = function
      | Leaf keys -> (
          match locate keys x with
          | `Found i ->
              Meter.alloc meter 1;
              Leaf (array_remove keys i)
          | `Child _ -> raise Not_found)
      | Dir (children, keys) ->
          let (i, replace) =
            match locate keys x with
            | `Found i -> (i, true)
            | `Child i -> (i, false)
          in
          let (c', keys') =
            if replace then begin
              (* replace the separator with its predecessor from child i *)
              let (m, c') = take_max t ?meter children.(i) in
              (c', array_set keys i m)
            end
            else (del children.(i), keys)
          in
          let children' = array_set children i c' in
          Meter.alloc meter 1;
          if underfull t c' then begin
            let (cs, ks) = fix t ?meter children' keys' i in
            Dir (cs, ks)
          end
          else Dir (children', keys')
    in
    match del t.root with
    | Dir (children, [||]) -> ({ t with root = children.(0) }, true)
    | root -> ({ t with root }, true)
    | exception Not_found -> (t, false)

  (* -- construction, measurement, checking -------------------------------- *)

  let of_list ?branching xs =
    List.fold_left (fun t x -> insert x t) (create ?branching ()) xs

  let shared_pages ~old t =
    let module H = Hashtbl.Make (struct
      type t = node

      let equal = ( == )
      let hash = Hashtbl.hash
    end) in
    let seen = H.create 64 in
    let rec remember n =
      if not (H.mem seen n) then begin
        H.add seen n ();
        match n with
        | Leaf _ -> ()
        | Dir (children, _) -> Array.iter remember children
      end
    in
    remember old.root;
    let rec go (shared, total) n =
      if H.mem seen n then
        let k = pages n in
        (shared + k, total + k)
      else
        match n with
        | Leaf _ -> (shared, total + 1)
        | Dir (children, _) ->
            Array.fold_left go (shared, total + 1) children
    in
    go (0, 0) t.root

  exception Broken

  let invariant t =
    let check_sorted keys lo hi =
      let n = Array.length keys in
      for i = 0 to n - 2 do
        if Elt.compare keys.(i) keys.(i + 1) >= 0 then raise Broken
      done;
      (match lo with
      | Some v when n > 0 && Elt.compare v keys.(0) >= 0 -> raise Broken
      | _ -> ());
      match hi with
      | Some v when n > 0 && Elt.compare keys.(n - 1) v >= 0 -> raise Broken
      | _ -> ()
    in
    let rec check ~root lo hi = function
      | Leaf keys ->
          check_sorted keys lo hi;
          if (not root) && Array.length keys < min_keys t then raise Broken;
          if Array.length keys > max_keys t then raise Broken;
          1
      | Dir (children, keys) ->
          check_sorted keys lo hi;
          let nk = Array.length keys in
          if Array.length children <> nk + 1 then raise Broken;
          if (not root) && nk < min_keys t then raise Broken;
          if nk > max_keys t then raise Broken;
          if root && nk < 1 then raise Broken;
          let depth = ref (-1) in
          for i = 0 to nk do
            let lo' = if i = 0 then lo else Some keys.(i - 1) in
            let hi' = if i = nk then hi else Some keys.(i) in
            let d = check ~root:false lo' hi' children.(i) in
            if !depth = -1 then depth := d
            else if d <> !depth then raise Broken
          done;
          !depth + 1
    in
    match check ~root:true None None t.root with
    | _ -> true
    | exception Broken -> false
end
