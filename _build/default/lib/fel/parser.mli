(** Mini-FEL parser.

    Precedence, loosest first: [if/then/else], [^] (right-associative),
    [||] (left), comparisons (non-associative), [+ -], [* /], and [:]
    application (left).  A program is a sequence of comma- or
    newline-separated equations ending with [RESULT expr]. *)

val parse_expr : string -> (Ast.expr, string) result

val parse_program : string -> (Ast.program, string) result

val parse_program_exn : string -> Ast.program
(** @raise Failure with the error message. *)
