lib/txn/txn.mli: Database Fdb_query Fdb_relational Format Tuple Value
