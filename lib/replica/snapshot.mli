(** Serialized checkpoints of the version archive.

    §3.3's "complete archives" are cheap in memory because consecutive
    versions share almost all structure.  The shared codec
    ({!Fdb_wire.Wire}) carries that property onto the wire: a
    {!Fdb_txn.History.t} is encoded as version 0 in full followed, per
    later version, by {e only the relations that are not physically
    shared} with their predecessor
    ({!Fdb_relational.Database.shares_relation}).  A read-heavy archive of
    hundreds of versions costs barely more than one version;
    [encode_naive] (every version in full) is the control.

    A snapshot is exactly one {!Fdb_wire.Wire.Checkpoint} frame —
    length-prefixed, CRC32c-checksummed, format-versioned — so the same
    bytes a backup receives over the network are what {!Fdb_wal} appends
    to disk.

    Decoding rebuilds the archive with the same cross-version slot sharing:
    an unchanged relation is the same OCaml value in both decoded versions.

    The format assumes what {!Fdb_relational.Database} enforces: the
    relation set and schemas are fixed at version 0 and never change. *)

val encode : Fdb_txn.History.t -> string
(** Delta encoding: version 0 full, later versions changed relations only. *)

val encode_naive : Fdb_txn.History.t -> string
(** Every version in full — the no-sharing control for the ablation. *)

val decode : string -> Fdb_txn.History.t
(** Inverse of {!val:encode} up to physical representation inside a
    relation (tuples are bulk-reloaded into the recorded backend).
    Consumes exactly one frame and rejects anything left over.
    @raise Fdb_wire.Wire.Corrupt — carrying the byte offset and reason —
    on a corrupt, truncated or trailing-garbage snapshot. *)
