(** Allocation meter for persistent structures.

    The paper's updating story (§2.2, §3.3) is quantitative: a functional
    update must reconstruct only a small part of a structure — all but
    [(log n)/n] of a tree-represented relation is shared.  Operations accept
    an optional meter that counts the nodes (or pages) built by the
    operation, so benches can report exactly that fraction. *)

type t

val create : unit -> t

val reset : t -> unit

val alloc : t option -> int -> unit
(** [alloc m k] records [k] freshly built nodes.  [None] meters nothing. *)

val allocs : t -> int
