lib/persistent/meter.mli:
