(* Merge tests: every policy must preserve per-stream order (the one thing
   serializability requires of the merge), choose must invert it, and the
   timed merge must respect timestamps. *)

module M = Fdb_merge.Merge

let policies =
  [ ("arrival", M.Arrival_order); ("bursty", M.Eager_clients [ 2; 3 ]);
    ("seeded-1", M.Seeded 1); ("seeded-99", M.Seeded 99);
    ("concat", M.Concatenated) ]

let test_merge_round_robin () =
  let merged = M.merge M.Arrival_order [ [ "a1"; "a2" ]; [ "b1"; "b2" ] ] in
  Alcotest.(check (list (pair int string)))
    "alternating"
    [ (0, "a1"); (1, "b1"); (0, "a2"); (1, "b2") ]
    (List.map (fun t -> (t.M.tag, t.M.item)) merged)

let test_merge_concat () =
  let merged = M.merge M.Concatenated [ [ 1; 2 ]; [ 3 ] ] in
  Alcotest.(check (list (pair int int)))
    "stream 0 first"
    [ (0, 1); (0, 2); (1, 3) ]
    (List.map (fun t -> (t.M.tag, t.M.item)) merged)

let test_merge_unequal_lengths () =
  let merged = M.merge M.Arrival_order [ [ 1 ]; [ 2; 3; 4 ]; [] ] in
  Alcotest.(check int) "all items" 4 (List.length merged);
  Alcotest.(check (list int)) "tags used" [ 0; 1 ] (M.tags_used merged)

let test_choose () =
  let merged = M.merge (M.Seeded 5) [ [ 1; 2; 3 ]; [ 4; 5 ] ] in
  Alcotest.(check (list int)) "choose 0" [ 1; 2; 3 ] (M.choose ~tag:0 merged);
  Alcotest.(check (list int)) "choose 1" [ 4; 5 ] (M.choose ~tag:1 merged);
  Alcotest.(check (list int)) "choose absent" [] (M.choose ~tag:7 merged)

let test_merge_timed () =
  let merged =
    M.merge_timed
      [ [ (1.0, "a1"); (5.0, "a2") ]; [ (2.0, "b1"); (3.0, "b2") ] ]
  in
  Alcotest.(check (list string)) "by timestamp" [ "a1"; "b1"; "b2"; "a2" ]
    (List.map (fun t -> t.M.item) merged);
  (* ties break by stream index *)
  let tied = M.merge_timed [ [ (1.0, "x") ]; [ (1.0, "y") ] ] in
  Alcotest.(check (list string)) "tie break" [ "x"; "y" ]
    (List.map (fun t -> t.M.item) tied)

(* Pin the positions carried by Merge_take on a 3-stream merge: the pos
   field must be the output position 0, 1, 2, ... in emission order (it
   is threaded as a counter — recomputing it per take once made a traced
   merge quadratic). *)
let test_merge_take_positions () =
  let (merged, trace) =
    Fdb_obs.Trace.record (fun () ->
        M.merge M.Arrival_order [ [ "a1"; "a2" ]; [ "b1" ]; [ "c1"; "c2" ] ])
  in
  let takes =
    List.filter_map
      (fun (e : Fdb_obs.Event.t) ->
        match e.Fdb_obs.Event.kind with
        | Fdb_obs.Event.Merge_take { tag; pos } -> Some (tag, pos)
        | _ -> None)
      trace
  in
  Alcotest.(check (list (pair int int)))
    "one take per item, positions 0..4 in order"
    [ (0, 0); (1, 1); (2, 2); (0, 3); (2, 4) ]
    takes;
  Alcotest.(check (list (pair int string)))
    "round robin over three streams"
    [ (0, "a1"); (1, "b1"); (2, "c1"); (0, "a2"); (2, "c2") ]
    (List.map (fun t -> (t.M.tag, t.M.item)) merged)

let test_empty_inputs () =
  Alcotest.(check int) "no streams" 0 (List.length (M.merge M.Arrival_order []));
  Alcotest.(check int) "empty streams" 0
    (List.length (M.merge (M.Seeded 3) [ []; [] ]))

(* Non-positive burst sizes used to spin forever (nothing was ever
   taken); they must be ignored and the merge must still drain. *)
let test_eager_nonpositive_bursts () =
  List.iter
    (fun bursts ->
      let merged = M.merge (M.Eager_clients bursts) [ [ 1; 2 ]; [ 3 ] ] in
      Alcotest.(check int) "drains everything" 3 (List.length merged))
    [ [ 0 ]; [ -2; 0 ]; [ 0; 2 ]; [] ]

let gen_streams =
  QCheck2.Gen.(
    list_size (int_range 1 5) (list_size (int_range 0 20) (int_range 0 1000)))

(* The serializability precondition: choose inverts merge for every policy. *)
let prop_choose_inverts_merge =
  QCheck2.Test.make ~name:"choose tag (merge p streams) = nth streams tag"
    ~count:300
    QCheck2.Gen.(pair (int_range 0 4) gen_streams)
    (fun (pi, streams) ->
      let (_, policy) = List.nth policies pi in
      let merged = M.merge policy streams in
      List.for_all
        (fun tag -> M.choose ~tag merged = List.nth streams tag)
        (List.init (List.length streams) (fun i -> i)))

let prop_merge_is_permutation =
  QCheck2.Test.make ~name:"merge loses and invents nothing" ~count:300
    QCheck2.Gen.(pair (int_range 0 4) gen_streams)
    (fun (pi, streams) ->
      let (_, policy) = List.nth policies pi in
      let merged = M.merge policy streams in
      List.sort compare (List.map (fun t -> t.M.item) merged)
      = List.sort compare (List.concat streams))

let prop_timed_merge_preserves_stream_order =
  QCheck2.Test.make ~name:"merge_timed preserves per-stream order" ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 4)
        (list_size (int_range 0 15) (float_bound_inclusive 100.0)))
    (fun time_streams ->
      (* make timestamps nondecreasing within each stream *)
      let streams =
        List.map
          (fun times ->
            let sorted = List.sort Float.compare times in
            List.mapi (fun i t -> (t, i)) sorted)
          time_streams
      in
      let merged = M.merge_timed streams in
      List.for_all
        (fun tag ->
          let got = M.choose ~tag merged in
          got = List.sort compare got)
        (List.init (List.length streams) (fun i -> i)))

let () =
  Alcotest.run "merge"
    [
      ( "policies",
        [
          Alcotest.test_case "round robin" `Quick test_merge_round_robin;
          Alcotest.test_case "concat" `Quick test_merge_concat;
          Alcotest.test_case "unequal lengths" `Quick
            test_merge_unequal_lengths;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "timed" `Quick test_merge_timed;
          Alcotest.test_case "traced take positions" `Quick
            test_merge_take_positions;
          Alcotest.test_case "empty" `Quick test_empty_inputs;
          Alcotest.test_case "non-positive bursts terminate" `Quick
            test_eager_nonpositive_bursts;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_choose_inverts_merge;
          QCheck_alcotest.to_alcotest prop_merge_is_permutation;
          QCheck_alcotest.to_alcotest prop_timed_merge_preserves_stream_order;
        ] );
    ]
