lib/lenient/ltree.mli: Engine Fdb_kernel
