(** The Rediflow machine simulator (paper §4, second simulation mode).

    A fixed set of processing elements sits on a {!Fdb_net.Topology.t}.
    Each PE executes at most one unit task per cycle from its local ready
    queue.  A task enabled by an event on another PE travels the network
    store-and-forward (one hop per cycle, per-link FIFO) before becoming
    ready — this is the "communication delay taken into account".

    Load management uses Rediflow's pressure model: after each cycle a PE
    whose queue exceeds a neighbour's by more than [balance_threshold]
    exports one queued task along that link (at normal message cost).

    Use {!val:scheduler} to drive an {!Fdb_kernel.Engine.t}; speedup
    relative to the one-PE run of the same program is the figure reported
    in the paper's Tables II and III. *)

open Fdb_kernel
open Fdb_net

type config = {
  topo : Topology.t;
  link_capacity : int;  (** messages per link per cycle (default 1) *)
  balance : bool;  (** pressure-gradient load balancing (default on) *)
  balance_threshold : int;  (** queue-length difference that triggers an
                                export (default 2) *)
}

val default_config : Topology.t -> config

type t

val create : config -> t

val scheduler : t -> Engine.scheduler
(** Scheduler to pass to {!Fdb_kernel.Engine.create}. *)

type machine_stats = {
  pe_tasks : int array;  (** tasks executed per PE *)
  migrations : int;  (** load-balancing task exports *)
  net : Fabric.stats;
  idle_cycles : int;  (** cycles in which no PE executed anything *)
}

val machine_stats : t -> machine_stats

val utilization : machine_stats -> cycles:int -> float
(** Mean fraction of PE-cycles spent executing tasks. *)

val imbalance : machine_stats -> float
(** max/mean of per-PE task counts (1.0 = perfectly balanced). *)
