(** Named counters and histograms.

    A process-global registry replacing the per-module ad-hoc counters.
    Instruments register once at module initialisation (the only point that
    pays a hashtable lookup); the hot path is a single unboxed [int]
    mutation, cheap enough to leave permanently on.

    Histograms use power-of-two buckets: bucket [i] holds observations [v]
    with [2^(i-1) <= v < 2^i] (bucket 0 holds [v <= 0]). *)

type counter
type histogram

val counter : string -> counter
(** Find-or-create; the same name always yields the same counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val histogram : string -> histogram
val observe : histogram -> int -> unit

type histo_stats = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;
  buckets : (int * int) list;  (** (inclusive upper bound, count), non-empty buckets only *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * histo_stats) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
val reset : unit -> unit
(** Zero every registered instrument (registration survives). *)

val pp_snapshot : Format.formatter -> snapshot -> unit
