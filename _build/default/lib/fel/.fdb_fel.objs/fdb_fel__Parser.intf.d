lib/fel/parser.mli: Ast
