(** Lenient lists: the paper's stream/relation representation.

    A lenient list is a chain of single-assignment cells.  The spine is
    produced one cell per cycle and may be consumed while still being
    produced — a scan can chase an insertion one cell behind ("processing
    incomplete objects", paper §1).  Every operation below costs exactly one
    engine task per cell it touches, which is what makes the ply widths of
    the paper's Table I reproducible. *)

open Fdb_kernel

type 'a cell = Nil | Cons of 'a * 'a t
and 'a t = 'a cell Engine.ivar

(** {1 Construction} *)

val nil : Engine.t -> 'a t
(** The empty list (already materialized). *)

val cons : Engine.t -> 'a -> 'a t -> 'a t
(** Lenient cons: the cell is immediately available; head and tail may be
    anything, including not-yet-filled lists.  Costs no task by itself. *)

val empty : Engine.t -> 'a t
(** A list whose spine has not been produced yet ([put] its cell later). *)

val of_list : Engine.t -> ?place:(int -> int) -> 'a list -> 'a t
(** Fully materialized list.  [place i] is the site at which element [i]'s
    cell is recorded as having been produced (default: site 0). *)

val produce : Engine.t -> ?label:string -> 'a list -> 'a t
(** A producer task chain that fills one cell per cycle — a stream source. *)

(** {1 Post-run extraction (zero engine cost)} *)

val to_list_now : 'a t -> 'a list option
(** [Some elements] if the whole spine is materialized, else [None]. *)

val prefix_now : 'a t -> 'a list
(** The materialized prefix (everything before the first empty cell). *)

(** {1 Scanning operations — one task per cell} *)

val find : Engine.t -> ?label:string -> ('a -> bool) -> 'a t -> 'a option Engine.ivar
(** Linear scan; early-exits on the first hit. *)

val find_until :
  Engine.t -> ?label:string -> stop:('a -> bool) -> ('a -> bool) -> 'a t ->
  'a option Engine.ivar
(** Like {!val:find} but also gives up early at the first element
    satisfying [stop] — the sorted-relation probe (the key cannot occur
    past its ordered position). *)

val length : Engine.t -> ?label:string -> 'a t -> int Engine.ivar

val fold : Engine.t -> ?label:string -> ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b Engine.ivar

val count : Engine.t -> ?label:string -> ('a -> bool) -> 'a t -> int Engine.ivar

val exists : Engine.t -> ?label:string -> ('a -> bool) -> 'a t -> bool Engine.ivar

(** {1 Reconstructing operations — copy a prefix, share the suffix} *)

val insert_ordered :
  Engine.t -> ?label:string -> cmp:('a -> 'a -> int) -> 'a -> 'a t ->
  'a t * unit Engine.ivar
(** Ordered insertion: copies cells while they precede [x], then splices
    [Cons (x, suffix)] and shares the untouched suffix with the old version
    (selective object copying, paper §2.2).  The returned acknowledgement
    fills when the splice point has been found — the transaction's
    response. *)

val append_elem : Engine.t -> ?label:string -> 'a -> 'a t -> 'a t * unit Engine.ivar
(** Insertion at the end: copies the whole spine (the conservative
    linked-list representation used in the paper's experiments). *)

val delete_first :
  Engine.t -> ?label:string -> ('a -> bool) -> 'a t -> 'a t * bool Engine.ivar
(** Remove the first matching element; acknowledgement says whether one was
    found.  Prefix copied, suffix shared. *)

val insert_unique :
  Engine.t -> ?label:string -> cmp:('a -> 'a -> int) -> 'a -> 'a t ->
  'a t * bool Engine.ivar
(** Ordered set insertion: like {!val:insert_ordered} but when an
    equal element is already present the old version is shared from that
    cell on and the acknowledgement is [false]. *)

val delete_ordered :
  Engine.t -> ?label:string -> cmp:('a -> 'a -> int) -> 'a -> 'a t ->
  'a t * bool Engine.ivar
(** Remove the first element comparing equal to the argument from a sorted
    list, giving up early once elements exceed it. *)

val update_all :
  Engine.t -> ?label:string -> ('a -> 'a option) -> 'a t -> 'a t * int Engine.ivar
(** Rewrite matching elements ([Some] = replacement) in a full copy-scan;
    the acknowledgement counts rewrites. *)

val delete_all :
  Engine.t -> ?label:string -> ('a -> bool) -> 'a t -> 'a t * int Engine.ivar
(** Remove every matching element (full copy-scan); the acknowledgement
    counts removals. *)

(** {1 Whole-list transformations — one task per cell, fully pipelined} *)

val map : Engine.t -> ?label:string -> ('a -> 'b) -> 'a t -> 'b t

val filter : Engine.t -> ?label:string -> ('a -> bool) -> 'a t -> 'a t

val append : Engine.t -> ?label:string -> 'a t -> 'a t -> 'a t

val select : Engine.t -> ?label:string -> ('a -> bool) -> 'a t -> 'a t * 'a list Engine.ivar
(** Like {!val:filter} but additionally delivers the complete result as a
    strict list once the scan finishes (a query response). *)
