(** Persistent 2-3 trees.

    The paper cites Hoffman & O'Donnell's equational 2-3 tree programs
    (transcribed to FEL by Ibrahim) as the tree representation whose
    functional updating shares all but O(log n) of a relation.  Set
    semantics; full insert and delete with rebalancing. *)

module Make (Elt : Ordered.S) : sig
  type t

  val empty : t

  val of_list : Elt.t list -> t

  val to_list : t -> Elt.t list

  val size : t -> int

  val height : t -> int

  val member : Elt.t -> t -> bool

  val find : Elt.t -> t -> Elt.t option

  val insert : ?meter:Meter.t -> Elt.t -> t -> t

  val delete : ?meter:Meter.t -> Elt.t -> t -> t * bool

  val shared_nodes : old:t -> t -> int * int

  val invariant : t -> bool
  (** All leaves at the same depth; keys strictly ordered. *)
end
