type t = { mutable allocs : int }

let create () = { allocs = 0 }
let reset m = m.allocs <- 0

let alloc m k =
  match m with None -> () | Some m -> m.allocs <- m.allocs + k

let allocs m = m.allocs
