type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | KW of string
  | LBRACKET | RBRACKET
  | LBRACE | RBRACE
  | LPAREN | RPAREN
  | COMMA
  | COLON
  | CARET
  | PARPAR
  | OP of string

exception Lex_error of string * int

let keywords = [ "if"; "then"; "else"; "RESULT" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_alpha c || is_digit c || c = '?'

let tokens src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if c = ';' && i + 1 < n && src.[i + 1] = ';' then begin
        (* comment to end of line *)
        let j = ref i in
        while !j < n && src.[!j] <> '\n' do
          incr j
        done;
        go !j acc
      end
      else if c = '[' then go (i + 1) (LBRACKET :: acc)
      else if c = ']' then go (i + 1) (RBRACKET :: acc)
      else if c = '{' then go (i + 1) (LBRACE :: acc)
      else if c = '}' then go (i + 1) (RBRACE :: acc)
      else if c = '(' then go (i + 1) (LPAREN :: acc)
      else if c = ')' then go (i + 1) (RPAREN :: acc)
      else if c = ',' then go (i + 1) (COMMA :: acc)
      else if c = ':' then go (i + 1) (COLON :: acc)
      else if c = '^' then go (i + 1) (CARET :: acc)
      else if c = '|' then
        if i + 1 < n && src.[i + 1] = '|' then go (i + 2) (PARPAR :: acc)
        else raise (Lex_error ("expected '||'", i))
      else if c = '=' then go (i + 1) (OP "=" :: acc)
      else if c = '!' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (OP "!=" :: acc)
        else raise (Lex_error ("expected '=' after '!'", i))
      else if c = '<' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (OP "<=" :: acc)
        else go (i + 1) (OP "<" :: acc)
      else if c = '>' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (OP ">=" :: acc)
        else go (i + 1) (OP ">" :: acc)
      else if c = '+' || c = '*' || c = '/' || c = '-' then
        go (i + 1) (OP (String.make 1 c) :: acc)
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error ("unterminated string", i))
          else if src.[j] = '"' then j + 1
          else begin
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let i' = str (i + 1) in
        go i' (STRING (Buffer.contents buf) :: acc)
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        go !j (INT (int_of_string (String.sub src i (!j - i))) :: acc)
      end
      else if is_alpha c then begin
        (* identifier; interior '-' belongs to the name when followed by a
           letter (apply-stream), otherwise it is subtraction (x-1). *)
        let j = ref i in
        let continue = ref true in
        while !continue do
          if !j < n && is_ident_char src.[!j] then incr j
          else if
            !j + 1 < n && src.[!j] = '-' && is_alpha src.[!j + 1]
          then j := !j + 2
          else continue := false
        done;
        let word = String.sub src i (!j - i) in
        if List.mem word keywords then go !j (KW word :: acc)
        else go !j (IDENT word :: acc)
      end
      else raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
  in
  go 0 []

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "ident %s" s
  | INT i -> Format.fprintf ppf "int %d" i
  | STRING s -> Format.fprintf ppf "string %S" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | LBRACKET -> Format.pp_print_string ppf "["
  | RBRACKET -> Format.pp_print_string ppf "]"
  | LBRACE -> Format.pp_print_string ppf "{"
  | RBRACE -> Format.pp_print_string ppf "}"
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | COMMA -> Format.pp_print_string ppf ","
  | COLON -> Format.pp_print_string ppf ":"
  | CARET -> Format.pp_print_string ppf "^"
  | PARPAR -> Format.pp_print_string ppf "||"
  | OP s -> Format.fprintf ppf "op %s" s
