(** Relational-algebra operators over materialized tuple lists.

    These are the pure building blocks used by query translation; the
    lenient engine versions (which pipeline) live in the core library. *)

val select : (Tuple.t -> bool) -> Tuple.t list -> Tuple.t list

val project : int list -> Tuple.t list -> Tuple.t list
(** Keep the given column indices, in the given order.
    @raise Invalid_argument on an out-of-range index. *)

val join : left_col:int -> right_col:int -> Tuple.t list -> Tuple.t list -> Tuple.t list
(** Natural join on one column pair; result tuples are the concatenation of
    the matching pairs. *)

val union : Tuple.t list -> Tuple.t list -> Tuple.t list
(** Set union (by full-tuple equality), result sorted. *)

val difference : Tuple.t list -> Tuple.t list -> Tuple.t list

val intersection : Tuple.t list -> Tuple.t list -> Tuple.t list

val product : Tuple.t list -> Tuple.t list -> Tuple.t list
