open Fdb_relational

type t = {
  versions : Database.t list; (* newest first, never empty *)
  count : int;
  (* Oldest-first snapshot of [versions], built on the first indexed
     access and reused until the archive is extended (extending returns a
     new [t] with a fresh empty cache, so cached arrays are never stale).
     Turns a length-n sweep of [version]/[changed_relations] calls from
     O(n^2) List.nth walks into one O(n) reversal plus O(1) lookups. *)
  indexed : Database.t array option ref;
}

exception Empty_history

let create db0 = { versions = [ db0 ]; count = 1; indexed = ref None }

let of_versions versions =
  match versions with
  | [] -> raise Empty_history
  | _ ->
      { versions; count = List.length versions; indexed = ref None }

let newest t =
  match t.versions with [] -> raise Empty_history | db :: _ -> db

let commit t txn =
  let (response, db') = txn (newest t) in
  ( { versions = db' :: t.versions; count = t.count + 1; indexed = ref None },
    response )

let commit_query t query = commit t (Txn.translate query)

let append t db =
  { versions = db :: t.versions; count = t.count + 1; indexed = ref None }

let of_queries db0 queries =
  let (t, rev_responses) =
    List.fold_left
      (fun (t, acc) query ->
        let (t', r) = commit_query t query in
        (t', r :: acc))
      (create db0, [])
      queries
  in
  (t, List.rev rev_responses)

let length t = t.count

let to_array t =
  match !(t.indexed) with
  | Some arr -> arr
  | None ->
      let arr = Array.make t.count (newest t) in
      List.iteri (fun i db -> arr.(t.count - 1 - i) <- db) t.versions;
      t.indexed := Some arr;
      arr

let version t i =
  if i < 0 || i >= t.count then invalid_arg "History.version: out of range";
  (to_array t).(i)

let latest = newest

let query_at t i query = fst (Txn.translate query (version t i))

let changed_relations t i =
  if i <= 0 then []
  else
    let before = version t (i - 1) and after = version t i in
    List.filter
      (fun name -> not (Database.shares_relation ~old:before after name))
      (Database.names after)

let sharing_ratio t =
  let n = length t in
  if n < 2 then 1.0
  else begin
    let shared = ref 0 and total = ref 0 in
    for i = 1 to n - 1 do
      let before = version t (i - 1) and after = version t i in
      List.iter
        (fun name ->
          incr total;
          if Database.shares_relation ~old:before after name then incr shared)
        (Database.names after)
    done;
    float_of_int !shared /. float_of_int !total
  end
