(* The paper's own notation: the §2.1 transaction-processing program
   written in FEL (the Function Equation Language of [13]) and executed on
   the lenient kernel.

   The program is the paper's Figure 2-1 as equations:

     old-databases = initial-database ^ new-databases
     [responses, new-databases] =
        apply-stream:[transactions, old-databases]

   Note the circularity: the stream of database versions is defined in
   terms of the outputs of apply-stream itself.  Lenient constructors make
   this well-defined, and the engine statistics show the pipelining the
   paper claims.

   Run with:  dune exec examples/fel_apply_stream.exe *)

let program =
  {|
    ;; apply-stream (paper section 2.1, verbatim structure)
    apply-stream:[ts, dbs] =
      if null?:ts then [[], []]
      else {
        [response, new-db] = (first:ts):(first:dbs),
        [more-responses, more-dbs] = apply-stream:[rest:ts, rest:dbs],
        RESULT [response ^ more-responses, new-db ^ more-dbs]
      },

    ;; a database here is simply a stream of keys
    mk-insert:k = { txn:db = [k, k ^ db], RESULT txn },
    member:[k, s] =
      if null?:s then 0
      else if first:s = k then 1 else member:[k, rest:s],
    mk-find:k = { txn:db = [member:[k, db], db], RESULT txn },
    len:s = if null?:s then 0 else 1 + len:(rest:s),
    mk-count:ignored = { txn:db = [len:db, db], RESULT txn },

    ;; the workload: a merged stream of transactions
    transactions =
      [mk-find:2, mk-insert:10, mk-find:10, mk-count:0,
       mk-insert:20, mk-find:99, mk-count:0],

    initial-database = [1, 2, 3, 4, 5],

    ;; the circular equations of Figure 2-1
    [responses, new-databases] = apply-stream:[transactions, old-databases],
    old-databases = initial-database ^ new-databases,

    RESULT responses
  |}

let () =
  print_endline "-- FEL program (the paper's apply-stream) --";
  print_endline program;
  match Fdb_fel.Eval.run_string program with
  | Error e -> prerr_endline ("error: " ^ e)
  | Ok (result, stats) ->
      Printf.printf "-- responses --\n%s\n" result;
      Printf.printf
        "   (find 2 -> 1, insert 10 -> 10, find 10 -> 1, count -> 6,\n\
        \    insert 20 -> 20, find 99 -> 0, count -> 7)\n\n";
      Format.printf
        "-- engine statistics --@.%a@.@." Fdb_kernel.Engine.pp_stats stats;
      Printf.printf
        "The transactions pipeline down the version stream: max ply %d > 1\n\
         even though the merged stream is logically sequential.\n"
        stats.Fdb_kernel.Engine.max_ply
