type pattern =
  | Pvar of string
  | Ptuple of string list

type expr =
  | Var of string
  | Int_lit of int
  | Str_lit of string
  | Nil_lit
  | List of expr list
  | Seq of expr * expr
  | App of expr * expr
  | Map of expr * expr
  | If of expr * expr * expr
  | Binop of string * expr * expr
  | Block of equation list * expr

and equation =
  | Def_fun of string * pattern * expr
  | Def_val of pattern * expr

type program = { equations : equation list; result : expr }

let pp_pattern ppf = function
  | Pvar x -> Format.pp_print_string ppf x
  | Ptuple xs ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Format.pp_print_string)
        xs

let rec pp_expr ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Int_lit n -> Format.fprintf ppf "%d" n
  | Str_lit s -> Format.fprintf ppf "%S" s
  | Nil_lit -> Format.pp_print_string ppf "[]"
  | List es ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_expr)
        es
  | Seq (a, b) -> Format.fprintf ppf "(%a ^ %a)" pp_expr a pp_expr b
  | App (f, x) -> Format.fprintf ppf "%a:%a" pp_atomish f pp_atomish x
  | Map (f, s) -> Format.fprintf ppf "(%a || %a)" pp_expr f pp_expr s
  | If (c, t, e) ->
      Format.fprintf ppf "(if %a then %a else %a)" pp_expr c pp_expr t pp_expr e
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp_expr a op pp_expr b
  | Block (eqs, res) ->
      Format.fprintf ppf "@[<v 2>{ %a,@ RESULT %a }@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           pp_equation)
        eqs pp_expr res

and pp_atomish ppf e =
  match e with
  | Var _ | Int_lit _ | Str_lit _ | Nil_lit | List _ | App _ ->
      pp_expr ppf e
  | Seq _ | Map _ | If _ | Binop _ | Block _ ->
      Format.fprintf ppf "(%a)" pp_expr e

and pp_equation ppf = function
  | Def_fun (f, p, e) ->
      Format.fprintf ppf "%s:%a = %a" f pp_pattern p pp_expr e
  | Def_val (p, e) -> Format.fprintf ppf "%a = %a" pp_pattern p pp_expr e

let pp_program ppf { equations; result } =
  Format.fprintf ppf "@[<v>%a@,RESULT %a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_equation)
    equations pp_expr result
