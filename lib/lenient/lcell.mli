(** Domain-safe single-assignment cells.

    The lenient constructors' multicore twin: an {!type:t} obeys exactly
    the write-once contract of {!Fdb_kernel.Engine.ivar} — {!val:put}
    fills it once, consumers see the value when (and as soon as) it is
    present — but is safe to share between OCaml 5 domains.  The state is
    a single [Atomic.t], so a pipelined consumer on another core never
    observes a torn write: the producer's plain writes happen-before any
    read that observes [Full].

    Unlike engine ivars, continuations registered with {!val:on_full} run
    {e immediately in the putting domain's context} (there is no
    scheduler to charge a task to); {!val:get} parks the calling domain
    until the value arrives. *)

type 'a t

exception Double_put
(** Raised on the second {!val:put}; cells are single-assignment. *)

val create : unit -> 'a t
(** Fresh empty cell. *)

val make : 'a -> 'a t
(** Cell created already full. *)

val put : 'a t -> 'a -> unit
(** Publish the value and run every registered waiter, in registration
    order, in the calling domain.  @raise Double_put on refill. *)

val on_full : 'a t -> ('a -> unit) -> unit
(** Run [k v] once the value is present: immediately when already full,
    otherwise in the context of the eventual {!val:put}. *)

val get : 'a t -> 'a
(** The value, parking the calling domain on a condition variable until a
    {!val:put} on another domain wakes it (blocked-reader parking). *)

val peek : 'a t -> 'a option
(** Non-blocking read. *)

val is_full : 'a t -> bool
