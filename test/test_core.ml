(* Core pipeline tests: per-query semantics of the lenient execution, the
   flagship serializability property (lenient run == sequential reference,
   for random workloads, both semantics, ideal and machine modes), and the
   primary-site cluster. *)

open Fdb
open Fdb_relational
module Ast = Fdb_query.Ast
module W = Fdb_workload.Workload
module M = Fdb_merge.Merge
module Machine = Fdb_rediflow.Machine
module Topology = Fdb_net.Topology
module Engine = Fdb_kernel.Engine

let tup k s = Tuple.make [ Value.Int k; Value.Str s ]

let schemas =
  [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ];
    Schema.make ~name:"S" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]

let spec_small =
  {
    Pipeline.schemas;
    initial =
      [ ("R", [ tup 1 "a"; tup 2 "b"; tup 3 "c" ]);
        ("S", [ tup 2 "x"; tup 9 "y" ]) ];
  }

let q = Fdb_query.Parser.parse_exn

let run_queries ?semantics ?mode srcs =
  let tagged = List.mapi (fun i s -> (i mod 2, q s)) srcs in
  (Pipeline.run ?semantics ?mode spec_small tagged).Pipeline.responses

let response_t = Alcotest.testable Pipeline.pp_response Pipeline.response_equal

let responses = Alcotest.(list (pair int response_t))

(* -- per-query semantics (Prepend) ---------------------------------------- *)

let test_prepend_insert_find () =
  Alcotest.check responses "insert then find sees both"
    [ (0, Pipeline.Inserted true); (1, Pipeline.Found [ tup 2 "new"; tup 2 "b" ]) ]
    (run_queries [ "insert (2, \"new\") into R"; "find 2 in R" ])

let test_prepend_delete_all () =
  Alcotest.check responses "delete removes every copy"
    [ (0, Pipeline.Inserted true); (1, Pipeline.Deleted 2);
      (0, Pipeline.Found []) ]
    (run_queries
       [ "insert (2, \"dup\") into R"; "delete 2 from R"; "find 2 in R" ])

let test_prepend_select_count () =
  Alcotest.check responses "select and count"
    [ (0, Pipeline.Selected [ tup 2 "b"; tup 3 "c" ]); (1, Pipeline.Counted 3) ]
    (run_queries [ "select * from R where key >= 2"; "count R" ])

let test_prepend_aggregates () =
  Alcotest.check responses "sum/min/max"
    [ (0, Pipeline.Aggregated (Some (Value.Int 6)));
      (1, Pipeline.Aggregated (Some (Value.Int 1)));
      (0, Pipeline.Aggregated (Some (Value.Str "c")));
      (1, Pipeline.Aggregated None);
      (0, Pipeline.Failed "cannot sum non-numeric column val of R") ]
    (run_queries
       [ "sum key from R"; "min key from R"; "max val from R";
         "min key from R where key > 99"; "sum val from R" ])

let test_prepend_update () =
  Alcotest.check responses "update rewrites and persists"
    [ (0, Pipeline.Updated 2); (1, Pipeline.Found [ tup 2 "z" ]);
      (0, Pipeline.Failed "cannot update the key column key of R") ]
    (run_queries
       [ "update R set val = \"z\" where key >= 2"; "find 2 in R";
         "update R set key = 1" ])

let test_prepend_join () =
  Alcotest.check responses "join"
    [ (0,
       Pipeline.Joined
         [ Tuple.make [ Value.Int 2; Value.Str "b"; Value.Int 2; Value.Str "x" ] ])
    ]
    (run_queries [ "join R and S on key = key" ])

let test_prepend_projection () =
  Alcotest.check responses "projected select"
    [ (0, Pipeline.Selected [ Tuple.make [ Value.Str "a" ] ]) ]
    (run_queries [ "select val from R where key = 1" ])

let test_failures () =
  match run_queries
          [ "find 1 in Nope"; "insert (\"bad\", \"t\") into R";
            "select ghost from R" ]
  with
  | [ (_, Pipeline.Failed _); (_, Pipeline.Failed _); (_, Pipeline.Failed _) ]
    -> ()
  | rs ->
      Alcotest.failf "expected three failures, got %a"
        (Format.pp_print_list (fun ppf (_, r) -> Pipeline.pp_response ppf r))
        rs

(* -- per-query semantics (Ordered_unique) ---------------------------------- *)

let test_ordered_duplicate_rejected () =
  Alcotest.check responses "duplicate key rejected"
    [ (0, Pipeline.Inserted false); (1, Pipeline.Found [ tup 2 "b" ]) ]
    (run_queries ~semantics:Pipeline.Ordered_unique
       [ "insert (2, \"clash\") into R"; "find 2 in R" ])

let test_ordered_insert_delete () =
  Alcotest.check responses "insert fresh then delete"
    [ (0, Pipeline.Inserted true); (1, Pipeline.Deleted 1);
      (0, Pipeline.Deleted 0) ]
    (run_queries ~semantics:Pipeline.Ordered_unique
       [ "insert (5, \"e\") into R"; "delete 5 from R"; "delete 5 from R" ])

(* -- versioning / isolation -------------------------------------------------- *)

let test_pipelined_visibility () =
  (* A find merged AFTER an insert must see it; one merged BEFORE must
     not.  This is exactly the timestamp-order guarantee of §2.4. *)
  Alcotest.check responses "reads see exactly the preceding writes"
    [ (0, Pipeline.Found []); (1, Pipeline.Inserted true);
      (0, Pipeline.Found [ tup 50 "new" ]) ]
    (run_queries
       [ "find 50 in R"; "insert (50, \"new\") into R"; "find 50 in R" ])

let test_read_only_transactions_flood () =
  (* Many finds over one relation must overlap: makespan ~ relation size,
     not #finds * size. *)
  let tagged = List.init 10 (fun i -> (i, q "find 3 in R")) in
  let report = Pipeline.run spec_small tagged in
  Alcotest.(check bool) "flooded" true
    (report.Pipeline.stats.Engine.max_ply >= 5)

let test_dispatch_chain_pipelines () =
  (* 30 inserts into R: the dispatch chain advances one per cycle even
     though each insert's scan is still running (Prepend: O(1) anyway);
     with finds behind them everything still completes. *)
  let tagged =
    List.init 30 (fun i ->
        (0, q (Printf.sprintf "insert (%d, \"k\") into R" (100 + i))))
    @ [ (1, q "count R") ]
  in
  let report = Pipeline.run spec_small tagged in
  (match List.rev report.Pipeline.responses with
  | (_, Pipeline.Counted n) :: _ -> Alcotest.(check int) "final count" 33 n
  | _ -> Alcotest.fail "no count response");
  (* chain of 31 dispatches + the final scan of 33 cells, overlapped *)
  Alcotest.(check bool)
    (Printf.sprintf "fast makespan (%d)" report.Pipeline.stats.Engine.cycles)
    true
    (report.Pipeline.stats.Engine.cycles < 80)

let test_final_db () =
  let tagged =
    List.map (fun s -> (0, q s))
      [ "insert (7, \"x\") into R"; "delete 1 from R";
        "update R set val = \"w\" where key = 2" ]
  in
  let report = Pipeline.run ~semantics:Pipeline.Ordered_unique spec_small tagged in
  let r_contents = List.assoc "R" report.Pipeline.final_db in
  Alcotest.(check (list (pair int string))) "final contents"
    [ (2, "w"); (3, "c"); (7, "x") ]
    (List.map
       (fun t ->
         match (Tuple.get t 0, Tuple.get t 1) with
         | (Value.Int k, Value.Str v) -> (k, v)
         | _ -> Alcotest.fail "bad tuple")
       r_contents);
  Alcotest.(check int) "S untouched" 2
    (List.length (List.assoc "S" report.Pipeline.final_db))

let test_responses_for () =
  let tagged = [ (3, q "count R"); (5, q "count S"); (3, q "count R") ] in
  let report = Pipeline.run spec_small tagged in
  Alcotest.(check int) "client 3 got 2" 2
    (List.length (Pipeline.responses_for ~tag:3 report));
  Alcotest.(check int) "client 5 got 1" 1
    (List.length (Pipeline.responses_for ~tag:5 report))

(* -- the all-engine architecture: produce, merge, dispatch ------------------- *)

let test_run_streams_end_to_end () =
  let streams =
    [ [ q "insert (7, \"x\") into R"; q "find 7 in R" ];
      [ q "count R"; q "count S" ] ]
  in
  let (report, merged) = Pipeline.run_streams spec_small streams in
  Alcotest.(check int) "4 merged" 4 (List.length merged);
  Alcotest.(check int) "4 responses" 4 (List.length report.Pipeline.responses);
  (* per-stream order preserved in the merged order *)
  let of_tag t =
    List.filter_map (fun (g, query) -> if g = t then Some query else None)
      merged
  in
  Alcotest.(check bool) "stream 0 order" true (of_tag 0 = List.nth streams 0);
  Alcotest.(check bool) "stream 1 order" true (of_tag 1 = List.nth streams 1);
  (* the answers equal the sequential meaning of the arbiter's order *)
  let reference = Pipeline.reference spec_small merged in
  Alcotest.(check bool) "serializable" true
    (List.for_all2
       (fun (t1, a) (t2, b) -> t1 = t2 && Pipeline.response_equal a b)
       report.Pipeline.responses reference)

(* -- the flagship property: serializability ---------------------------------- *)

let gen_query_src =
  (* Random well- and ill-formed queries over R, S and an unknown Z. *)
  QCheck2.Gen.(
    let rel = oneofl [ "R"; "S"; "Z" ] in
    let key = int_range 0 15 in
    oneof
      [ map2
          (fun r k ->
            Printf.sprintf "insert (%d, \"v%d\") into %s" k k r)
          rel key;
        map2 (fun r k -> Printf.sprintf "find %d in %s" k r) rel key;
        map2 (fun r k -> Printf.sprintf "delete %d from %s" k r) rel key;
        map2
          (fun r k -> Printf.sprintf "select * from %s where key >= %d" r k)
          rel key;
        map (fun r -> Printf.sprintf "count %s" r) rel;
        map2
          (fun r k -> Printf.sprintf "sum key from %s where key <= %d" r k)
          rel key;
        map (fun r -> Printf.sprintf "min key from %s" r) rel;
        map2
          (fun r k ->
            Printf.sprintf "update %s set val = \"u%d\" where key = %d" r k k)
          rel key;
        map (fun r -> Printf.sprintf "max val from %s" r) rel;
        return "join R and S on key = key" ])

let gen_tagged_stream =
  QCheck2.Gen.(
    list_size (int_range 0 40)
      (map2 (fun tag src -> (tag, q src)) (int_range 0 3) gen_query_src))

let prop_run_streams_serializable =
  QCheck2.Test.make ~name:"engine-merged streams stay serializable" ~count:80
    QCheck2.Gen.(
      list_size (int_range 1 4) (list_size (int_range 0 10) gen_query_src))
    (fun streams ->
      let streams = List.map (List.map q) streams in
      let (report, merged) = Pipeline.run_streams spec_small streams in
      let reference = Pipeline.reference spec_small merged in
      List.for_all2
        (fun (t1, a) (t2, b) -> t1 = t2 && Pipeline.response_equal a b)
        report.Pipeline.responses reference)

let serializable_with ?semantics ?mode name =
  QCheck2.Test.make ~name ~count:150 gen_tagged_stream (fun tagged ->
      match Pipeline.check_serializable ?semantics ?mode spec_small tagged with
      | Ok _ -> true
      | Error e -> QCheck2.Test.fail_report e)

let prop_serializable_prepend_ideal =
  serializable_with ~semantics:Pipeline.Prepend
    "serializable: prepend semantics, ideal machine"

let prop_serializable_ordered_ideal =
  serializable_with ~semantics:Pipeline.Ordered_unique
    "serializable: ordered semantics, ideal machine"

let prop_serializable_on_machine =
  serializable_with ~semantics:Pipeline.Prepend
    ~mode:(Pipeline.On_machine (Machine.default_config (Topology.hypercube 2)))
    "serializable: prepend semantics, 4-PE hypercube"

let prop_serializable_ordered_machine =
  serializable_with ~semantics:Pipeline.Ordered_unique
    ~mode:(Pipeline.On_machine (Machine.default_config (Topology.mesh3d 2 2 1)))
    "serializable: ordered semantics, 2x2 mesh"

(* Machine mode must compute the same responses as ideal mode. *)
let prop_serializable_random_topologies =
  QCheck2.Test.make ~name:"serializable on random machines" ~count:60
    QCheck2.Gen.(pair (int_range 0 999) gen_tagged_stream)
    (fun (seed, tagged) ->
      let topo =
        Topology.random ~seed ~n:(2 + (seed mod 9)) ~extra_edges:(seed mod 5)
      in
      match
        Pipeline.check_serializable
          ~mode:(Pipeline.On_machine (Machine.default_config topo))
          spec_small tagged
      with
      | Ok _ -> true
      | Error e -> QCheck2.Test.fail_report e)

let prop_machine_matches_ideal =
  QCheck2.Test.make ~name:"machine responses == ideal responses" ~count:100
    gen_tagged_stream (fun tagged ->
      let ideal = (Pipeline.run spec_small tagged).Pipeline.responses in
      let machine =
        (Pipeline.run
           ~mode:(Pipeline.On_machine (Machine.default_config (Topology.ring 5)))
           spec_small tagged)
          .Pipeline.responses
      in
      List.for_all2
        (fun (t1, r1) (t2, r2) -> t1 = t2 && Pipeline.response_equal r1 r2)
        ideal machine)

(* The paper-grid runs have no unresolved work and deterministic stats. *)
let test_experiment_determinism () =
  let w = W.generate W.default_spec in
  let tagged = Experiment.merged_workload w in
  let spec = Pipeline.db_spec_of_workload w in
  let s1 = (Pipeline.run spec tagged).Pipeline.stats in
  let s2 = (Pipeline.run spec tagged).Pipeline.stats in
  Alcotest.(check int) "same tasks" s1.Engine.tasks s2.Engine.tasks;
  Alcotest.(check int) "same cycles" s1.Engine.cycles s2.Engine.cycles;
  Alcotest.(check int) "no orphans" 0 s1.Engine.orphans

(* -- cluster (Figure 3-1) ------------------------------------------------------ *)

let test_cluster_routes_responses () =
  let cluster = Cluster.create ~topology:(Topology.bus 4) spec_small in
  let outcome =
    Cluster.submit cluster
      [ (1, [ q "insert (7, \"c1\") into R"; q "find 7 in R" ]);
        (2, [ q "count S" ]);
        (3, [ q "find 2 in S" ]) ]
  in
  Alcotest.(check int) "4 merged" 4 (List.length outcome.Cluster.merged);
  Alcotest.(check int) "4 requests" 4 outcome.Cluster.request_messages;
  Alcotest.(check int) "4 responses" 4 outcome.Cluster.response_messages;
  let site1 = List.assoc 1 outcome.Cluster.per_site in
  Alcotest.(check int) "site 1 got both answers" 2 (List.length site1);
  (match site1 with
  | [ Pipeline.Inserted true; Pipeline.Found [ t ] ] ->
      Alcotest.(check bool) "found its own insert" true
        (Tuple.equal t (tup 7 "c1"))
  | _ -> Alcotest.fail "site 1 responses wrong");
  (match List.assoc 2 outcome.Cluster.per_site with
  | [ Pipeline.Counted 2 ] -> ()
  | _ -> Alcotest.fail "site 2 response wrong");
  Alcotest.(check bool) "serializable" true
    (Cluster.serializable outcome cluster)

let test_cluster_bus_is_a_fair_merge () =
  (* With all sites injecting one query per cycle, the bus interleaves
     them round-robin-ish: per-site order must be preserved. *)
  let cluster = Cluster.create ~topology:(Topology.bus 3) spec_small in
  let outcome =
    Cluster.submit cluster
      [ (1, List.init 5 (fun i -> q (Printf.sprintf "find %d in R" i)));
        (2, List.init 5 (fun i -> q (Printf.sprintf "find %d in S" i))) ]
  in
  let site_queries site =
    List.filter_map
      (fun (tag, query) -> if tag = site then Some query else None)
      outcome.Cluster.merged
  in
  Alcotest.(check int) "site 1 order kept" 5 (List.length (site_queries 1));
  Alcotest.(check bool) "site 1 subsequence" true
    (site_queries 1 = List.init 5 (fun i -> q (Printf.sprintf "find %d in R" i)))

let test_cluster_rejects_bad_sites () =
  let cluster = Cluster.create ~topology:(Topology.bus 3) spec_small in
  Alcotest.check_raises "primary as client"
    (Invalid_argument "Cluster.submit: clients must not sit on the primary")
    (fun () -> ignore (Cluster.submit cluster [ (0, [ q "count R" ]) ]));
  Alcotest.check_raises "site outside topology"
    (Invalid_argument "Cluster.submit: site outside the topology") (fun () ->
      ignore (Cluster.submit cluster [ (9, [ q "count R" ]) ]))

let test_cluster_failover_by_replay () =
  let cluster = Cluster.create ~topology:(Topology.bus 4) spec_small in
  let sessions =
    [ (1, [ q "insert (7, \"x\") into R"; q "find 7 in R"; q "count R" ]);
      (2, [ q "insert (8, \"y\") into R"; q "find 8 in R" ]);
      (3, [ q "count S" ]) ]
  in
  let fo = Cluster.submit_with_failover cluster ~fail_after:3 sessions in
  Alcotest.(check int) "6 merged" 6 (List.length fo.Cluster.f_merged);
  Alcotest.(check int) "3 served before crash" 3
    (List.length fo.Cluster.f_served_before_crash);
  Alcotest.(check bool) "replay reproduces the served prefix" true
    fo.Cluster.f_prefix_agrees;
  (* every client eventually holds every answer *)
  Alcotest.(check int) "all answers delivered" 6
    (List.fold_left
       (fun acc (_, rs) -> acc + List.length rs)
       0 fo.Cluster.f_per_site)

let prop_failover_always_consistent =
  QCheck2.Test.make ~name:"failover replay agrees at every crash point"
    ~count:60
    QCheck2.Gen.(pair (int_range 0 20) gen_tagged_stream)
    (fun (crash_at, tagged) ->
      let cluster = Cluster.create ~topology:(Topology.bus 5) spec_small in
      (* deal the stream into 4 client sessions on sites 1..4 *)
      let sessions =
        List.init 4 (fun site ->
            ( site + 1,
              List.filteri (fun i _ -> i mod 4 = site) (List.map snd tagged) ))
      in
      let fo = Cluster.submit_with_failover cluster ~fail_after:crash_at sessions in
      fo.Cluster.f_prefix_agrees)

(* -- experiments smoke --------------------------------------------------------- *)

let test_table1_shape () =
  let cells = Experiment.table1 ~transactions:20 ~initial_tuples:20 () in
  Alcotest.(check int) "full grid" 18 (List.length cells);
  List.iter
    (fun c ->
      Alcotest.(check bool) "max >= avg" true
        (float_of_int c.Experiment.c_max_ply >= c.Experiment.c_avg_ply);
      Alcotest.(check bool) "positive" true (c.Experiment.c_avg_ply > 0.0))
    cells;
  (* concurrency falls as updates rise, per relation count *)
  List.iter
    (fun k ->
      let at pct =
        (List.find
           (fun c -> c.Experiment.c_pct = pct && c.Experiment.c_relations = k)
           cells)
          .Experiment.c_avg_ply
      in
      Alcotest.(check bool)
        (Printf.sprintf "declining trend for %d relations" k)
        true
        (at 0.0 >= at 38.0))
    [ 5; 3; 1 ]

let test_fig22_rows () =
  let rows = Experiment.fig22 ~sizes:[ 100; 1000 ] () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "rebuilt is logarithmic" true
        (r.Experiment.h_rebuilt <= 6);
      Alcotest.(check int) "shared + rebuilt = total" r.Experiment.h_pages
        (r.Experiment.h_shared + r.Experiment.h_rebuilt))
    rows;
  match rows with
  | [ small; large ] ->
      Alcotest.(check bool) "fraction shrinks" true
        (large.Experiment.h_fraction < small.Experiment.h_fraction)
  | _ -> Alcotest.fail "expected two rows"

(* -- traffic driver ---------------------------------------------------------- *)

let traffic_plan =
  Fdb_workload.Openloop.generate
    (Fdb_workload.Openloop.standard ~relations:2 ~initial_tuples:600
       ~tenants:2 ~txns:400 ~seed:9 ())

let test_traffic_differential () =
  (* the same stream through every mode and two layouts must land the same
     final state; Sequential carries the per-phase percentiles *)
  let module T = Fdb.Traffic in
  let seq = T.drive ~backend:(Relation.Btree_backend 8) traffic_plan in
  Alcotest.(check int) "txns" 400 seq.T.tr_txns;
  Alcotest.(check string) "unit" "txn" seq.T.tr_latency_unit;
  Alcotest.(check int) "three phases" 3 (List.length seq.T.tr_phases);
  List.iter
    (fun ph ->
      Alcotest.(check bool) (ph.T.ph_name ^ " has latencies") true
        (ph.T.ph_txns > 0 && ph.T.ph_p50_ns >= 0.0
        && ph.T.ph_p50_ns <= ph.T.ph_p999_ns))
    seq.T.tr_phases;
  let digests =
    List.map
      (fun (label, mode, backend) ->
        let r = T.drive ~mode ~microbatch:64 ~backend traffic_plan in
        (label, r.T.tr_final_digest, r.T.tr_final_tuples))
      [
        ("seq-column", T.Sequential, Relation.Column_backend 64);
        ("sharded", T.Sharded { shards = 2 }, Relation.Btree_backend 8);
        ("repair", T.Repair { batch = 16 }, Relation.Btree_backend 8);
      ]
  in
  List.iter
    (fun (label, digest, tuples) ->
      Alcotest.(check string) (label ^ " digest") seq.T.tr_final_digest digest;
      Alcotest.(check int) (label ^ " tuples") seq.T.tr_final_tuples tuples)
    digests

let () =
  Alcotest.run "core"
    [
      ( "prepend semantics",
        [
          Alcotest.test_case "insert/find" `Quick test_prepend_insert_find;
          Alcotest.test_case "delete all" `Quick test_prepend_delete_all;
          Alcotest.test_case "select/count" `Quick test_prepend_select_count;
          Alcotest.test_case "join" `Quick test_prepend_join;
          Alcotest.test_case "aggregates" `Quick test_prepend_aggregates;
          Alcotest.test_case "update" `Quick test_prepend_update;
          Alcotest.test_case "projection" `Quick test_prepend_projection;
          Alcotest.test_case "failures" `Quick test_failures;
        ] );
      ( "ordered semantics",
        [
          Alcotest.test_case "duplicate rejected" `Quick
            test_ordered_duplicate_rejected;
          Alcotest.test_case "insert/delete" `Quick test_ordered_insert_delete;
        ] );
      ( "pipelining",
        [
          Alcotest.test_case "visibility" `Quick test_pipelined_visibility;
          Alcotest.test_case "reads flood" `Quick
            test_read_only_transactions_flood;
          Alcotest.test_case "dispatch chain" `Quick
            test_dispatch_chain_pipelines;
          Alcotest.test_case "responses_for" `Quick test_responses_for;
          Alcotest.test_case "final_db" `Quick test_final_db;
          Alcotest.test_case "run_streams end to end" `Quick
            test_run_streams_end_to_end;
        ] );
      ( "serializability",
        [
          QCheck_alcotest.to_alcotest prop_serializable_prepend_ideal;
          QCheck_alcotest.to_alcotest prop_serializable_ordered_ideal;
          QCheck_alcotest.to_alcotest prop_serializable_on_machine;
          QCheck_alcotest.to_alcotest prop_serializable_ordered_machine;
          QCheck_alcotest.to_alcotest prop_serializable_random_topologies;
          QCheck_alcotest.to_alcotest prop_run_streams_serializable;
          QCheck_alcotest.to_alcotest prop_machine_matches_ideal;
          Alcotest.test_case "determinism" `Quick test_experiment_determinism;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "modes and backends agree" `Quick
            test_traffic_differential;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "routes responses" `Quick
            test_cluster_routes_responses;
          Alcotest.test_case "bus is a merge" `Quick
            test_cluster_bus_is_a_fair_merge;
          Alcotest.test_case "bad sites" `Quick test_cluster_rejects_bad_sites;
          Alcotest.test_case "failover by replay" `Quick
            test_cluster_failover_by_replay;
          QCheck_alcotest.to_alcotest prop_failover_always_consistent;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 shape" `Quick test_table1_shape;
          Alcotest.test_case "fig22 rows" `Quick test_fig22_rows;
        ] );
    ]
