lib/query/parser.ml: Ast Fdb_relational Format Lexer List Printf String Value
