lib/query/ast.ml: Fdb_relational Format Value
