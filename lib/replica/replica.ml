open Fdb_relational
module Ast = Fdb_query.Ast
module Txn = Fdb_txn.Txn
module History = Fdb_txn.History
module Topology = Fdb_net.Topology
module Fabric = Fdb_net.Fabric
module Reliable = Fdb_net.Reliable
module Trace = Fdb_obs.Trace
module Event = Fdb_obs.Event

let m_failover = Fdb_obs.Metrics.histogram "replica.failover_ticks"

type crash_point =
  | No_crash
  | Mid_stream of int
  | Mid_checkpoint of int
  | Mid_replay of int

type config = {
  checkpoint_every : int;
  replay_rate : int;
  client_timeout : int;
  client_backoff_cap : int;
  heartbeat_every : int;
  detector_timeout : int;
  drop_one_in : int;
  seed : int;
  crash : crash_point;
}

let default_config =
  {
    checkpoint_every = 4;
    replay_rate = 4;
    client_timeout = 16;
    client_backoff_cap = 128;
    heartbeat_every = 5;
    detector_timeout = 60;
    drop_one_in = 5;
    seed = 0;
    crash = No_crash;
  }

type report = {
  responses : Txn.response list list;
  final : Database.t;
  history_len : int;
  crashed : bool;
  committed_primary : int;
  committed_backup : int;
  replayed : int;
  log_suffix_at_crash : int;
  discarded_log : int;
  checkpoints_sent : int;
  checkpoints_installed : int;
  checkpoint_bytes : int;
  stale_served : int;
  not_ready : int;
  client_retries : int;
  dedup_hits : int;
  acked_lost : (int * int) list;
  dup_applied : int;
  replay_mismatches : int;
  crash_tick : int option;
  promoted_tick : int option;
  recovery_ticks : int option;
  ticks : int;
  net : Reliable.stats;
}

(* -- wire ------------------------------------------------------------------- *)

type reply_body =
  | Committed of Txn.response
  | Stale of Txn.response
  | Not_ready

type wire =
  | Req of { client : int; seq : int; query : Ast.query }
  | Reply of { seq : int; body : reply_body }
  | Rec of {
      index : int;
      client : int;
      seq : int;
      query : Ast.query;
      resp : Txn.response;
    }
  | Ckpt of { upto : int; snap : string; dedup : (int * int * Txn.response) list }
  | RAck of { upto : int }
  | Heartbeat

(* -- node state ------------------------------------------------------------- *)

type role = Serving | Passive | Promoting | Dead

type server = {
  id : int;
  mutable role : role;
  mutable has_backup : bool;
  mutable history : History.t;
  mutable commits : int;  (* log index of the next commit *)
  mutable fresh : int;  (* live commits made here (replay excluded) *)
  last : (int, int * Txn.response) Hashtbl.t;  (* client -> newest (seq, resp) *)
  applied : (int * int, int) Hashtbl.t;  (* (client, seq) -> apply count *)
  mutable dup_applied : int;
  mutable dedup_hits : int;
  (* primary side *)
  mutable acked_upto : int;
  mutable pending_replies : (int * int * Txn.response * int) list;
  mutable since_ckpt : int;
  mutable ckpt_sent : int;
  (* backup side *)
  plog : (int, int * int * Ast.query * Txn.response) Hashtbl.t;
  mutable logged : int;  (* indices below this are logged or checkpointed *)
  mutable installed_upto : int;
  mutable ckpt_installed : int;
  mutable last_heard : int;
  mutable to_replay : (int * int * Ast.query * Txn.response) list;
  mutable replay_mismatches : int;
}

type client = {
  c_id : int;
  site : int;
  mutable stream : Ast.query list;
  mutable seq : int;
  mutable current : Ast.query option;
  mutable target : int;
  mutable timer : int;
  mutable timeout : int;
  mutable strikes : int;
  mutable retries : int;
  mutable responses : Txn.response list;  (* newest first *)
}

type state = {
  cfg : config;
  replay_rate : int;
  net : wire Reliable.t;
  servers : server array;  (* [| primary; backup |] *)
  clients : client array;
  mutable acked : (int * int) list;  (* (client, seq) Committed received *)
  mutable stale_served : int;
  mutable not_ready : int;
  mutable ckpt_bytes : int;
  mutable replayed : int;
  mutable log_suffix : int;
  mutable discarded : int;
  mutable crash_tick : int option;
  mutable promoted_tick : int option;
  mutable now : int;  (* current tick, the replica layer's timebase *)
}

let make_server id ~role ~has_backup initial =
  {
    id;
    role;
    has_backup;
    history = History.create initial;
    commits = 0;
    fresh = 0;
    last = Hashtbl.create 16;
    applied = Hashtbl.create 64;
    dup_applied = 0;
    dedup_hits = 0;
    acked_upto = 0;
    pending_replies = [];
    since_ckpt = 0;
    ckpt_sent = 0;
    plog = Hashtbl.create 64;
    logged = 0;
    installed_upto = 0;
    ckpt_installed = 0;
    last_heard = 0;
    to_replay = [];
    replay_mismatches = 0;
  }

(* -- helpers ---------------------------------------------------------------- *)

let expected_seq srv c =
  match Hashtbl.find_opt srv.last c with None -> 0 | Some (s, _) -> s + 1

let dump_last srv =
  Hashtbl.fold (fun c (s, r) acc -> (c, s, r) :: acc) srv.last []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let bump_applied srv c s =
  let n = Option.value ~default:0 (Hashtbl.find_opt srv.applied (c, s)) in
  Hashtbl.replace srv.applied (c, s) (n + 1);
  if n > 0 then srv.dup_applied <- srv.dup_applied + 1

let site_of_client c = 2 + c

let send_reply st srv ~client ~seq body =
  if Trace.enabled () then begin
    let status =
      match body with
      | Committed _ -> "committed"
      | Stale _ -> "stale"
      | Not_ready -> "not_ready"
    in
    Trace.emit_at ~ts:st.now ~site:srv.id
      (Event.Replica_reply { client; seq; status })
  end;
  Reliable.send_raw st.net ~src:srv.id ~dst:(site_of_client client)
    (Reply { seq; body })

(* -- primary ---------------------------------------------------------------- *)

let ship_checkpoint st srv =
  let snap = Snapshot.encode srv.history in
  if Trace.enabled () then
    Trace.emit_at ~ts:st.now ~site:srv.id
      (Event.Replica_checkpoint
         { upto = srv.commits; bytes = String.length snap });
  Reliable.send st.net ~src:srv.id ~dst:1
    (Ckpt { upto = srv.commits; snap; dedup = dump_last srv });
  srv.ckpt_sent <- srv.ckpt_sent + 1;
  st.ckpt_bytes <- st.ckpt_bytes + String.length snap;
  srv.since_ckpt <- 0

let commit_live st srv ~client ~seq query =
  let index = srv.commits in
  bump_applied srv client seq;
  let (h, resp) = History.commit_query srv.history query in
  srv.history <- h;
  srv.commits <- index + 1;
  srv.fresh <- srv.fresh + 1;
  Hashtbl.replace srv.last client (seq, resp);
  if Trace.enabled () then
    Trace.emit_at ~ts:st.now ~site:srv.id
      (Event.Replica_commit { index; client; seq; backed = srv.has_backup });
  if srv.has_backup then begin
    Reliable.send st.net ~src:srv.id ~dst:1
      (Rec { index; client; seq; query; resp });
    srv.pending_replies <- srv.pending_replies @ [ (client, seq, resp, index) ];
    srv.since_ckpt <- srv.since_ckpt + 1;
    if st.cfg.checkpoint_every > 0 && srv.since_ckpt >= st.cfg.checkpoint_every
    then ship_checkpoint st srv
  end
  else send_reply st srv ~client ~seq (Committed resp)

let primary_req st srv ~client ~seq query =
  let expected = expected_seq srv client in
  if seq = expected then commit_live st srv ~client ~seq query
  else if seq < expected then begin
    (* Retry of something already committed: answer from the cache unless
       the reply is still gated on replication. *)
    srv.dedup_hits <- srv.dedup_hits + 1;
    if
      seq = expected - 1
      && not
           (List.exists
              (fun (c, s, _, _) -> c = client && s = seq)
              srv.pending_replies)
    then
      match Hashtbl.find_opt srv.last client with
      | Some (s, resp) when s = seq ->
          send_reply st srv ~client ~seq (Committed resp)
      | _ -> ()
  end
(* seq > expected cannot happen with closed-loop clients: ignore. *)

let primary_rack st srv ~upto =
  if upto > srv.acked_upto then srv.acked_upto <- upto;
  if Trace.enabled () then
    Trace.emit_at ~ts:st.now ~site:srv.id
      (Event.Replica_ack { upto = srv.acked_upto });
  let (ready, still) =
    List.partition (fun (_, _, _, index) -> index < srv.acked_upto)
      srv.pending_replies
  in
  srv.pending_replies <- still;
  List.iter
    (fun (client, seq, resp, _) ->
      send_reply st srv ~client ~seq (Committed resp))
    ready

(* -- backup ----------------------------------------------------------------- *)

let backup_drain_contiguous st srv =
  let advanced = ref false in
  let continue = ref true in
  while !continue do
    if Hashtbl.mem srv.plog srv.logged then begin
      srv.logged <- srv.logged + 1;
      advanced := true
    end
    else continue := false
  done;
  if !advanced then
    Reliable.send_raw st.net ~src:srv.id ~dst:0 (RAck { upto = srv.logged })

let backup_rec st srv ~index record =
  if index >= srv.installed_upto && not (Hashtbl.mem srv.plog index) then begin
    Hashtbl.replace srv.plog index record;
    backup_drain_contiguous st srv
  end

let backup_ckpt st srv ~upto ~snap ~dedup =
  if upto > srv.installed_upto then begin
    if Trace.enabled () then
      Trace.emit_at ~ts:st.now ~site:srv.id (Event.Replica_install { upto });
    srv.history <- Snapshot.decode snap;
    srv.installed_upto <- upto;
    srv.ckpt_installed <- srv.ckpt_installed + 1;
    Hashtbl.reset srv.last;
    List.iter (fun (c, s, r) -> Hashtbl.replace srv.last c (s, r)) dedup;
    if upto > srv.logged then srv.logged <- upto;
    let stale =
      Hashtbl.fold (fun i _ acc -> if i < upto then i :: acc else acc)
        srv.plog []
    in
    List.iter (Hashtbl.remove srv.plog) stale;
    backup_drain_contiguous st srv;
    Reliable.send_raw st.net ~src:srv.id ~dst:0 (RAck { upto = srv.logged })
  end

let backup_req st srv ~client ~seq query =
  (* Graceful degradation: reads from the newest locally installed
     version, tagged; writes must wait for promotion. *)
  let expected = expected_seq srv client in
  if seq < expected then begin
    (* Already covered by checkpoint or replay: serve the cached commit. *)
    srv.dedup_hits <- srv.dedup_hits + 1;
    match Hashtbl.find_opt srv.last client with
    | Some (s, resp) when s = seq ->
        send_reply st srv ~client ~seq (Committed resp)
    | _ -> ()
  end
  else if Ast.is_update query then begin
    st.not_ready <- st.not_ready + 1;
    send_reply st srv ~client ~seq Not_ready
  end
  else begin
    let (resp, _) = Txn.translate query (History.latest srv.history) in
    st.stale_served <- st.stale_served + 1;
    send_reply st srv ~client ~seq (Stale resp)
  end

let promote st srv tick =
  srv.role <- Promoting;
  let suffix =
    List.init (srv.logged - srv.installed_upto) (fun i ->
        Hashtbl.find srv.plog (srv.installed_upto + i))
  in
  if Trace.enabled () then
    Trace.emit_at ~ts:tick ~site:srv.id
      (Event.Replica_promote { suffix = List.length suffix });
  st.log_suffix <- List.length suffix;
  st.discarded <-
    Hashtbl.fold (fun i _ acc -> if i >= srv.logged then acc + 1 else acc)
      srv.plog 0;
  srv.to_replay <- suffix;
  srv.commits <- srv.installed_upto

let replay_step st srv tick =
  let budget = ref st.replay_rate in
  while !budget > 0 && srv.to_replay <> [] do
    (match srv.to_replay with
    | [] -> ()
    | (client, seq, query, recorded) :: rest ->
        srv.to_replay <- rest;
        if Trace.enabled () then
          Trace.emit_at ~ts:tick ~site:srv.id
            (Event.Replica_replay { index = srv.commits });
        bump_applied srv client seq;
        let (h, resp) = History.commit_query srv.history query in
        srv.history <- h;
        srv.commits <- srv.commits + 1;
        Hashtbl.replace srv.last client (seq, resp);
        if not (Txn.response_equal resp recorded) then
          srv.replay_mismatches <- srv.replay_mismatches + 1;
        st.replayed <- st.replayed + 1);
    decr budget
  done;
  if srv.to_replay = [] then begin
    srv.role <- Serving;
    srv.has_backup <- false;
    st.promoted_tick <- Some tick
  end

(* -- clients ---------------------------------------------------------------- *)

let send_req st c query =
  Reliable.send_raw st.net ~src:c.site ~dst:c.target
    (Req { client = c.c_id; seq = c.seq; query });
  c.timer <- c.timeout

let step_client st c =
  match c.current with
  | None -> (
      match c.stream with
      | [] -> ()
      | q :: rest ->
          c.stream <- rest;
          c.current <- Some q;
          send_req st c q)
  | Some q ->
      c.timer <- c.timer - 1;
      if c.timer <= 0 then begin
        c.retries <- c.retries + 1;
        c.strikes <- c.strikes + 1;
        if c.strikes >= 2 then begin
          (* Two straight timeouts: assume the server is gone, fail over
             with a fresh timeout. *)
          c.target <- 1 - c.target;
          c.strikes <- 0;
          c.timeout <- st.cfg.client_timeout
        end
        else
          c.timeout <- min st.cfg.client_backoff_cap (2 * c.timeout);
        send_req st c q
      end

let client_reply st c ~seq body =
  if c.current <> None && seq = c.seq then
    match body with
    | Committed resp ->
        c.responses <- resp :: c.responses;
        c.current <- None;
        c.seq <- c.seq + 1;
        c.timeout <- st.cfg.client_timeout;
        c.strikes <- 0;
        st.acked <- (c.c_id, seq) :: st.acked
    | Stale _ | Not_ready -> ()

(* -- the loop --------------------------------------------------------------- *)

let check_config cfg =
  if cfg.client_timeout < 1 then invalid_arg "Replica: client_timeout < 1";
  if cfg.client_backoff_cap < cfg.client_timeout then
    invalid_arg "Replica: client_backoff_cap < client_timeout";
  if cfg.heartbeat_every < 1 then invalid_arg "Replica: heartbeat_every < 1";
  if cfg.detector_timeout < 2 * cfg.heartbeat_every then
    invalid_arg "Replica: detector_timeout too small for the heartbeat";
  if cfg.replay_rate < 1 then invalid_arg "Replica: replay_rate < 1";
  if cfg.checkpoint_every < 0 then invalid_arg "Replica: checkpoint_every < 0";
  (match cfg.crash with
  | No_crash -> ()
  | Mid_stream n | Mid_replay n ->
      if n < 1 then invalid_arg "Replica: crash after < 1 commits"
  | Mid_checkpoint n ->
      if n < 1 then invalid_arg "Replica: crash at checkpoint < 1";
      if cfg.checkpoint_every = 0 then
        invalid_arg "Replica: Mid_checkpoint with checkpoints disabled")

let crash_due cfg (primary : server) =
  primary.role <> Dead
  &&
  match cfg.crash with
  | No_crash -> false
  | Mid_stream n | Mid_replay n -> primary.fresh >= n
  | Mid_checkpoint n -> primary.ckpt_sent >= n

let apply_crash st tick =
  let primary = st.servers.(0) in
  if Trace.enabled () then
    Trace.emit_at ~ts:tick ~site:0 (Event.Replica_crash { site = 0 });
  Fabric.set_down (Reliable.fabric st.net) 0;
  Reliable.cancel_node st.net 0;
  primary.role <- Dead;
  st.crash_tick <- Some tick

let dispatch st tick (dst, msg) =
  if dst >= 2 then
    let c = st.clients.(dst - 2) in
    match msg with Reply { seq; body } -> client_reply st c ~seq body | _ -> ()
  else
    let srv = st.servers.(dst) in
    if srv.role <> Dead then begin
      if dst = 1 then srv.last_heard <- tick;
      match (msg, srv.role, dst) with
      | (Req { client; seq; query }, Serving, _) ->
          primary_req st srv ~client ~seq query
      | (Req { client; seq; query }, (Passive | Promoting), _) ->
          backup_req st srv ~client ~seq query
      | (RAck { upto }, Serving, 0) -> primary_rack st srv ~upto
      | (Rec { index; client; seq; query; resp }, Passive, 1) ->
          backup_rec st srv ~index (client, seq, query, resp)
      | (Ckpt { upto; snap; dedup }, Passive, 1) ->
          backup_ckpt st srv ~upto ~snap ~dedup
      | (Heartbeat, _, _) -> ()
      | _ -> ()
    end

let run ?(config = default_config) ~initial streams =
  check_config config;
  if streams = [] then invalid_arg "Replica.run: no client streams";
  let nclients = List.length streams in
  let topo = Topology.complete (2 + nclients) in
  let net =
    Reliable.create ~drop_one_in:config.drop_one_in ~seed:config.seed topo
  in
  let st =
    {
      cfg = config;
      replay_rate =
        (match config.crash with
        | Mid_replay _ -> 1
        | _ -> config.replay_rate);
      net;
      servers =
        [| make_server 0 ~role:Serving ~has_backup:true initial;
           make_server 1 ~role:Passive ~has_backup:false initial |];
      clients =
        Array.of_list
          (List.mapi
             (fun i stream ->
               {
                 c_id = i;
                 site = site_of_client i;
                 stream;
                 seq = 0;
                 current = None;
                 target = 0;
                 timer = 0;
                 timeout = config.client_timeout;
                 strikes = 0;
                 retries = 0;
                 responses = [];
               })
             streams);
      acked = [];
      stale_served = 0;
      not_ready = 0;
      ckpt_bytes = 0;
      replayed = 0;
      log_suffix = 0;
      discarded = 0;
      crash_tick = None;
      promoted_tick = None;
      now = 0;
    }
  in
  let primary = st.servers.(0) and backup = st.servers.(1) in
  let clients_done () =
    Array.for_all (fun c -> c.stream = [] && c.current = None) st.clients
  in
  let finished () =
    clients_done ()
    && (primary.role <> Dead || st.promoted_tick <> None)
  in
  let tick = ref 0 in
  while not (finished ()) do
    incr tick;
    let now = !tick in
    st.now <- now;
    if now > 300_000 then
      failwith
        (Format.asprintf
           "Replica.run: no quiescence after %d ticks (clients at %s; \
            primary %s %d commits, backup %s logged %d; net: %d tx %d drops)"
           now
           (String.concat ","
              (Array.to_list
                 (Array.map (fun c -> string_of_int c.seq) st.clients)))
           (match primary.role with Dead -> "dead" | _ -> "alive")
           primary.commits
           (match backup.role with
           | Serving -> "promoted"
           | Promoting -> "promoting"
           | _ -> "passive")
           backup.logged (Reliable.stats net).Reliable.transmissions
           (Reliable.stats net).Reliable.drops);
    (* 1. crash injection *)
    if crash_due config primary then apply_crash st now;
    (* 2. clients: timers, retries, fresh sends *)
    Array.iter (fun c -> step_client st c) st.clients;
    (* 3. heartbeats and the crash-stop detector *)
    if now mod config.heartbeat_every = 0 then begin
      if primary.role = Serving then
        Reliable.send_raw net ~src:0 ~dst:1 Heartbeat;
      (* The backup's heartbeat doubles as a cumulative ack: a lost RAck
         datagram would otherwise wedge the primary's gated replies, since
         the reliable channel suppresses the duplicate Rec that would
         re-trigger it. *)
      if backup.role = Passive then
        Reliable.send_raw net ~src:1 ~dst:0 (RAck { upto = backup.logged })
    end;
    (match backup.role with
    | Passive when now - backup.last_heard > config.detector_timeout ->
        promote st backup now
    | Promoting -> replay_step st backup now
    | _ -> ());
    (* 4-5. the medium, then protocol handlers *)
    List.iter (dispatch st now) (Reliable.step net)
  done;
  let survivor = if primary.role = Dead then backup else primary in
  let acked = List.sort_uniq compare st.acked in
  let acked_lost =
    List.filter
      (fun (c, s) ->
        match Hashtbl.find_opt survivor.last c with
        | None -> true
        | Some (newest, _) -> s > newest)
      acked
  in
  {
    responses =
      Array.to_list (Array.map (fun c -> List.rev c.responses) st.clients);
    final = History.latest survivor.history;
    history_len = History.length survivor.history;
    crashed = primary.role = Dead;
    committed_primary = primary.fresh;
    committed_backup = backup.fresh;
    replayed = st.replayed;
    log_suffix_at_crash = st.log_suffix;
    discarded_log = st.discarded;
    checkpoints_sent = primary.ckpt_sent;
    checkpoints_installed = backup.ckpt_installed;
    checkpoint_bytes = st.ckpt_bytes;
    stale_served = st.stale_served;
    not_ready = st.not_ready;
    client_retries =
      Array.fold_left (fun a c -> a + c.retries) 0 st.clients;
    dedup_hits = primary.dedup_hits + backup.dedup_hits;
    acked_lost;
    dup_applied = survivor.dup_applied;
    replay_mismatches = backup.replay_mismatches;
    crash_tick = st.crash_tick;
    promoted_tick = st.promoted_tick;
    recovery_ticks =
      (match (st.crash_tick, st.promoted_tick) with
      | (Some c, Some p) ->
          Fdb_obs.Metrics.observe m_failover (p - c);
          Some (p - c)
      | _ -> None);
    ticks = !tick;
    net = Reliable.stats net;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>committed: %d at the primary, %d post-failover; crashed: %b@,\
     recovery: %s (replayed %d of a %d-record suffix, %d discarded)@,\
     checkpoints: %d shipped (%d installed, %d bytes)@,\
     degradation: %d stale reads, %d writes refused, %d client retries, \
     %d dedup hits@,\
     invariants: %d acked lost, %d double-applied, %d replay mismatches@,\
     %d ticks; net: %d transmissions, %d drops@]"
    r.committed_primary r.committed_backup r.crashed
    (match r.recovery_ticks with
    | Some t -> Printf.sprintf "%d ticks" t
    | None -> "n/a")
    r.replayed r.log_suffix_at_crash r.discarded_log r.checkpoints_sent
    r.checkpoints_installed r.checkpoint_bytes r.stale_served r.not_ready
    r.client_retries r.dedup_hits
    (List.length r.acked_lost)
    r.dup_applied r.replay_mismatches r.ticks r.net.Reliable.transmissions
    r.net.Reliable.drops
