lib/relational/algebra.mli: Tuple
