open Fdb_relational
module Ast = Fdb_query.Ast

type mix = {
  insert_pct : float;
  delete_pct : float;
  update_pct : float;
  join_pct : float;
  miss_ratio : float;
  skew : float;
}

type storm = { hot_keys : int; hot_pct : float }

type phase = { name : string; txns : int; mix : mix; storm : storm option }

type spec = {
  relations : int;
  initial_tuples : int;
  tenants : int;
  seed : int;
  phases : phase list;
}

type t = {
  spec : spec;
  schemas : Schema.t list;
  initial : (string * Tuple.t list) list;
  stream : (int * Ast.query) array;
  phase_bounds : (string * int * int) list;
}

let read_mix =
  {
    insert_pct = 0.0;
    delete_pct = 0.0;
    update_pct = 0.0;
    join_pct = 0.0;
    miss_ratio = 0.05;
    skew = 0.0;
  }

let check spec =
  if spec.relations < 1 then invalid_arg "Openloop: relations < 1";
  if spec.initial_tuples < 0 then invalid_arg "Openloop: initial_tuples < 0";
  if spec.tenants < 1 then invalid_arg "Openloop: tenants < 1";
  if spec.phases = [] then invalid_arg "Openloop: no phases";
  List.iter
    (fun ph ->
      if ph.txns < 0 then invalid_arg "Openloop: phase txns < 0";
      let m = ph.mix in
      if m.insert_pct < 0.0 || m.delete_pct < 0.0 || m.update_pct < 0.0
         || m.join_pct < 0.0
         || m.insert_pct +. m.delete_pct +. m.update_pct +. m.join_pct
            > 100.0 +. Workload.mix_epsilon
      then invalid_arg "Openloop: bad operation mix";
      if m.miss_ratio < 0.0 || m.miss_ratio > 1.0 then
        invalid_arg "Openloop: miss_ratio outside [0, 1]";
      if m.skew < 0.0 then invalid_arg "Openloop: skew < 0";
      match ph.storm with
      | None -> ()
      | Some s ->
          if s.hot_keys < 1 then invalid_arg "Openloop: storm hot_keys < 1";
          if s.hot_pct < 0.0 || s.hot_pct > 100.0 then
            invalid_arg "Openloop: storm hot_pct outside [0, 100]")
    spec.phases

let schema_for i =
  Schema.make
    ~name:(Workload.relation_name i)
    ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ]

let tuple_for key =
  Tuple.make [ Value.Int key; Value.Str (Printf.sprintf "t%d" key) ]

(* Same rank-skew draw as [Workload.pick_index]: a uniform variate raised
   to [1 + skew] concentrates picks on low ranks — the most recently
   inserted keys. *)
let pick_rank rand ~skew n =
  if skew <= 0.0 then Random.State.int rand n
  else
    let u = Random.State.float rand 1.0 in
    min (n - 1) (int_of_float (float_of_int n *. (u ** (1.0 +. skew))))

(* A key reference during a hot-key storm aims at the [hot_keys] most
   recent ranks with probability [hot_pct]; the rest of the traffic keeps
   the phase's base skew. *)
let pick_reference rand ph n =
  match ph.storm with
  | Some s when Random.State.float rand 100.0 < s.hot_pct ->
      Random.State.int rand (min s.hot_keys n)
  | _ -> pick_rank rand ~skew:ph.mix.skew n

let shuffled_kinds rand ph =
  let n = ph.txns in
  let (n_ins, n_del, n_upd, n_join) =
    Workload.mix_counts ~insert_pct:ph.mix.insert_pct
      ~delete_pct:ph.mix.delete_pct ~update_pct:ph.mix.update_pct
      ~join_pct:ph.mix.join_pct n
  in
  let kinds = Array.make n `Find in
  for i = 0 to n_ins - 1 do
    kinds.(i) <- `Insert
  done;
  for i = n_ins to n_ins + n_del - 1 do
    kinds.(i) <- `Delete
  done;
  for i = n_ins + n_del to n_ins + n_del + n_upd - 1 do
    kinds.(i) <- `Update
  done;
  for i = n_ins + n_del + n_upd to n_ins + n_del + n_upd + n_join - 1 do
    kinds.(i) <- `Join
  done;
  for i = n - 1 downto 1 do
    let j = Random.State.int rand (i + 1) in
    let tmp = kinds.(i) in
    kinds.(i) <- kinds.(j);
    kinds.(j) <- tmp
  done;
  kinds

let generate spec =
  check spec;
  let rand = Random.State.make [| spec.seed |] in
  let k = spec.relations in
  let schemas = List.init k (fun i -> schema_for (i + 1)) in
  let initial_keys = Array.make k [] in
  for key = spec.initial_tuples - 1 downto 0 do
    let r = key mod k in
    initial_keys.(r) <- key :: initial_keys.(r)
  done;
  let initial =
    List.init k (fun i ->
        (Workload.relation_name (i + 1), List.map tuple_for initial_keys.(i)))
  in
  let present = Array.map Keyset.of_list initial_keys in
  let next_key = ref spec.initial_tuples in
  let total = List.fold_left (fun acc ph -> acc + ph.txns) 0 spec.phases in
  let stream = Array.make total (0, Ast.Find { rel = ""; key = Value.Int 0 }) in
  let off = ref 0 in
  let phase_bounds =
    List.map
      (fun ph ->
        let start = !off in
        let kinds = shuffled_kinds rand ph in
        Array.iter
          (fun kind ->
            let tenant = Random.State.int rand spec.tenants in
            let r = Random.State.int rand k in
            let rel = Workload.relation_name (r + 1) in
            let q =
              match kind with
              | `Insert ->
                  let key = !next_key in
                  incr next_key;
                  Keyset.prepend present.(r) key;
                  Ast.Insert
                    {
                      rel;
                      values =
                        [ Value.Int key; Value.Str (Printf.sprintf "t%d" key) ];
                    }
              | `Delete ->
                  let keys = present.(r) in
                  if Keyset.size keys = 0 then
                    Ast.Delete { rel; key = Value.Int (-1) }
                  else
                    let key =
                      Keyset.remove keys
                        (pick_reference rand ph (Keyset.size keys))
                    in
                    Ast.Delete { rel; key = Value.Int key }
              | `Update ->
                  let keys = present.(r) in
                  if Keyset.size keys = 0 then
                    Ast.Update
                      {
                        rel;
                        col = "val";
                        value = Value.Str "touched";
                        where = Ast.Cmp ("key", Ast.Eq, Value.Int (-1));
                      }
                  else
                    let key =
                      Keyset.get keys (pick_reference rand ph (Keyset.size keys))
                    in
                    Ast.Update
                      {
                        rel;
                        col = "val";
                        value = Value.Str (Printf.sprintf "u%d" key);
                        where = Ast.Cmp ("key", Ast.Eq, Value.Int key);
                      }
              | `Join ->
                  let r2 =
                    if k = 1 then r
                    else (r + 1 + Random.State.int rand (k - 1)) mod k
                  in
                  Ast.Join
                    {
                      left = rel;
                      right = Workload.relation_name (r2 + 1);
                      on = ("key", "key");
                    }
              | `Find ->
                  let miss =
                    Random.State.float rand 1.0 < ph.mix.miss_ratio
                  in
                  let keys = present.(r) in
                  if miss || Keyset.size keys = 0 then
                    Ast.Find
                      { rel; key = Value.Int (-1 - Random.State.int rand 1000) }
                  else
                    Ast.Find
                      {
                        rel;
                        key =
                          Value.Int
                            (Keyset.get keys
                               (pick_reference rand ph (Keyset.size keys)));
                      }
            in
            stream.(!off) <- (tenant, q);
            incr off)
          kinds;
        (ph.name, start, !off))
      spec.phases
  in
  { spec; schemas; initial; stream; phase_bounds }

let total_txns t = Array.length t.stream

let tagged t = Array.to_list t.stream

let tenant_stream t tenant =
  Array.to_list t.stream
  |> List.filter_map (fun (tn, q) -> if tn = tenant then Some q else None)

let standard ?(relations = 1) ?(initial_tuples = 1_000_000) ?(tenants = 4)
    ?(txns = 30_000) ?(seed = 42) () =
  (* The canonical production sweep: a read-heavy steady state, a hot-key
     storm concentrating most references on the 64 newest keys, and a
     write burst — the read/write mix schedule swept across phases. *)
  let steady = txns * 4 / 10 in
  let storm = txns * 3 / 10 in
  let burst = txns - steady - storm in
  {
    relations;
    initial_tuples;
    tenants;
    seed;
    phases =
      [
        {
          name = "steady";
          txns = steady;
          mix =
            {
              read_mix with
              insert_pct = 10.0;
              delete_pct = 5.0;
              update_pct = 5.0;
              skew = 0.8;
            };
          storm = None;
        };
        {
          name = "hot-storm";
          txns = storm;
          mix = { read_mix with update_pct = 10.0; miss_ratio = 0.0 };
          storm = Some { hot_keys = 64; hot_pct = 90.0 };
        };
        {
          name = "write-burst";
          txns = burst;
          mix =
            {
              read_mix with
              insert_pct = 40.0;
              delete_pct = 20.0;
              update_pct = 20.0;
            };
          storm = None;
        };
      ];
  }
