lib/fel/lexer.mli: Format
