(** Exactly-once delivery over a lossy medium.

    The paper leaves failure transparency as "an opportunity for future
    investigation" (§1).  This module explores the transport half of that
    opportunity: a sequence-numbered, acknowledged, retransmitting channel
    layered over a {!Fabric.t} whose deliveries can be dropped.

    Semantics per (src, dst) pair: FIFO senders, at-least-once transmission
    by timeout-driven retransmission, exactly-once {e delivery} by receiver
    deduplication.  Acknowledgements travel the same lossy medium. *)

type 'a t

type stats = {
  transmissions : int;  (** data injections, including retransmissions *)
  drops : int;  (** messages (data or ack) lost by the medium *)
  duplicates : int;  (** retransmitted data suppressed at the receiver *)
  delivered : int;  (** unique payloads handed to the application *)
}

val create :
  ?drop_one_in:int ->
  ?seed:int ->
  ?retransmit_after:int ->
  ?link_capacity:int ->
  Topology.t ->
  'a t
(** [drop_one_in] = n loses roughly one in n arrivals (default 0: lossless);
    [retransmit_after] is the sender timeout in steps (default
    [4 * diameter + 4]). *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit

val step : 'a t -> (int * 'a) list
(** Advance one cycle; returns fresh [(dst, payload)] deliveries (never a
    duplicate). *)

val idle : 'a t -> bool
(** Nothing outstanding, in flight, or awaiting acknowledgement. *)

val run_to_quiescence : ?max_steps:int -> 'a t -> (int * 'a) list
(** Step until {!val:idle} (or raise [Failure] after [max_steps], default
    100,000); returns all deliveries in order. *)

val stats : 'a t -> stats
