test/test_lenient.mli:
