test/test_persistent.ml: Alcotest Avl Btree Fdb_persistent List Meter Ordered Plist Printf QCheck2 QCheck_alcotest Two3
