(** Deterministic workload generation.

    The paper's experiment (§4): 50 transactions over a database of 1, 3 or
    5 relations holding 50 tuples in total, all transactions single-tuple
    inserts or finds, with the insert percentage swept through
    {0, 4, 7, 14, 24, 38}.  The exact scripts were not published; this
    module regenerates statistically equivalent ones from a seed. *)

open Fdb_relational

type spec = {
  transactions : int;
  relations : int;
  initial_tuples : int;  (** spread round-robin over the relations *)
  insert_pct : float;  (** percentage of transactions that are inserts *)
  delete_pct : float;  (** extension beyond the paper; 0 in the paper grid *)
  update_pct : float;  (** extension: single-row updates; 0 in the paper grid *)
  join_pct : float;
      (** extension: cross-relation key joins — the multi-site
          transactions of the sharded executor; 0 in the paper grid (and
          [0.0] leaves historical seeds byte-identical) *)
  miss_ratio : float;  (** fraction of finds probing an absent key *)
  skew : float;
      (** key-popularity skew for find/delete/update references: [0.0]
          (the default) draws uniformly over the present keys — exactly
          the historical generator, so existing seeds are unchanged;
          higher values concentrate references on the most recently
          inserted keys (approximate zipfian rank-skew).
          @raise Invalid_argument when negative. *)
  clients : int;  (** how many streams the queries are dealt into *)
  seed : int;
}

val default_spec : spec
(** The paper's base point: 50 transactions, 3 relations, 50 tuples,
    14% inserts, no deletes or updates, 10% misses, 2 clients, seed 42. *)

val paper_insert_percentages : float list
(** [0; 4; 7; 14; 24; 38] *)

val paper_relation_counts : int list
(** [5; 3; 1] — the column order of Tables I-III. *)

val mix_epsilon : float
(** Tolerance for the "operation mix sums to at most 100" validation:
    mixes like three copies of [100.0 /. 3.0] sum to just over 100 in
    floating point and must not be rejected for it. *)

val mix_counts :
  insert_pct:float ->
  delete_pct:float ->
  update_pct:float ->
  join_pct:float ->
  int ->
  int * int * int * int
(** [(inserts, deletes, updates, joins)] out of [n] transactions, by
    largest remainder: the combined named total is rounded half away from
    zero and clamped to [n], each kind floors its exact quota, and the
    leftover units go to the largest fractional remainders (ties in
    declaration order).  The total never exceeds [n]; the rest are finds.
    This is exactly the allocation {!val:generate} uses. *)

type t = {
  spec : spec;
  schemas : Schema.t list;
  initial : (string * Tuple.t list) list;  (** per-relation bulk load *)
  client_streams : Fdb_query.Ast.query list list;
}

val generate : spec -> t
(** Deterministic in [spec] (including the seed). *)

val all_queries : t -> Fdb_query.Ast.query list
(** The streams concatenated (generation order). *)

val insert_count : t -> int

val relation_name : int -> string
(** ["R1"], ["R2"], ... *)
