(* Multi-user serializable execution — the paper's Figure 2-3 scenario,
   scaled up to a small bank.

   Two tellers and an auditor submit query streams concurrently.  The
   streams pass through the pseudo-functional merge; the merged stream is
   processed by the lenient pipeline, which extracts all the concurrency
   the data dependencies allow while answering exactly as a sequential
   execution of the merged order would (serializability).

   Run with:  dune exec examples/multi_user.exe *)

open Fdb
open Fdb_relational
module M = Fdb_merge.Merge
module Engine = Fdb_kernel.Engine

let schemas =
  [ Schema.make ~name:"Accounts"
      ~cols:[ ("acct", Schema.CInt); ("owner", Schema.CStr) ];
    Schema.make ~name:"Audit"
      ~cols:[ ("acct", Schema.CInt); ("note", Schema.CStr) ] ]

let tup k s = Tuple.make [ Value.Int k; Value.Str s ]

let spec =
  {
    Pipeline.schemas;
    initial =
      [ ("Accounts",
         List.init 20 (fun i -> tup (1000 + i) (Printf.sprintf "cust%d" i)));
        ("Audit", []) ];
  }

let teller_1 =
  [ "insert (2001, \"newcomer\") into Accounts";
    "find 2001 in Accounts";
    "insert (2001, \"opened\") into Audit" ]

let teller_2 =
  [ "insert (2002, \"walkin\") into Accounts";
    "find 2002 in Accounts" ]

let auditor = [ "count Accounts"; "select * from Audit"; "count Audit" ]

let () =
  let parse = Fdb_query.Parser.parse_exn in
  let streams = List.map (List.map parse) [ teller_1; teller_2; auditor ] in
  let merged = M.merge M.Arrival_order streams in
  let tagged = List.map (fun t -> (t.M.tag, t.M.item)) merged in
  Format.printf "-- merged stream (tags route the responses) --@.";
  List.iter
    (fun t ->
      Format.printf "  [client %d] %s@." t.M.tag
        (Fdb_query.Ast.to_string t.M.item))
    merged;
  let report = Pipeline.run ~trace:true spec tagged in
  Format.printf "@.-- per-client responses (choose on the tagged stream) --@.";
  List.iteri
    (fun tag name ->
      Format.printf "%s:@." name;
      List.iter
        (fun r -> Format.printf "  %a@." Pipeline.pp_response r)
        (Pipeline.responses_for ~tag report))
    [ "teller 1"; "teller 2"; "auditor" ];
  let s = report.Pipeline.stats in
  Format.printf
    "@.-- concurrency extracted from the merged (logically sequential) \
     stream --@.";
  Format.printf
    "%d unit tasks over %d cycles: max ply %d, average ply %.1f@."
    s.Engine.tasks s.Engine.cycles s.Engine.max_ply s.Engine.avg_ply;
  (* And the punchline: those responses are exactly the sequential ones. *)
  (match Pipeline.check_serializable spec tagged with
  | Ok _ -> Format.printf "serializable: lenient == sequential reference@."
  | Error e -> Format.printf "NOT SERIALIZABLE: %s@." e);
  (* The same scenario with the merge itself on the engine: clients are
     lenient stream producers, the arbiter interleaves them by arrival,
     and the dispatch chain chases the merged stream as it materializes —
     the whole Figure 2-1/2-3 architecture as one task graph. *)
  let (engine_report, engine_merged) = Pipeline.run_streams spec streams in
  let s = engine_report.Pipeline.stats in
  Format.printf
    "@.-- the same run with the merge on the engine (run_streams) --@.";
  Format.printf
    "the arbiter merged %d queries; %d tasks over %d cycles (max ply %d)@."
    (List.length engine_merged) s.Engine.tasks s.Engine.cycles
    s.Engine.max_ply;
  let reference = Pipeline.reference spec engine_merged in
  Format.printf "serializable against the arbiter's own order: %b@."
    (List.for_all2
       (fun (t1, a) (t2, b) -> t1 = t2 && Pipeline.response_equal a b)
       engine_report.Pipeline.responses reference)
