lib/net/fabric.ml: Array Hashtbl List Queue Topology
