(* The multicore execution layer: domain-safe single-assignment cells
   (Lcell), the work-stealing domain pool (Fdb_par.Pool), domain-safe
   metrics, and the flagship differential property — the parallel
   executor's response stream is identical to the deterministic engine's
   and the sequential reference's on the same seeded workloads. *)

open Fdb
open Fdb_relational
module Lcell = Fdb_lenient.Lcell
module Pool = Fdb_par.Pool
module Metrics = Fdb_obs.Metrics
module Machine = Fdb_rediflow.Machine
module Topology = Fdb_net.Topology

(* -- Lcell ----------------------------------------------------------------- *)

let test_lcell_basics () =
  let c = Lcell.create () in
  Alcotest.(check bool) "fresh is empty" false (Lcell.is_full c);
  Alcotest.(check (option int)) "peek empty" None (Lcell.peek c);
  Lcell.put c 42;
  Alcotest.(check bool) "full after put" true (Lcell.is_full c);
  Alcotest.(check (option int)) "peek full" (Some 42) (Lcell.peek c);
  Alcotest.(check int) "get" 42 (Lcell.get c);
  Alcotest.check_raises "second put" Lcell.Double_put (fun () ->
      Lcell.put c 0);
  Alcotest.(check int) "make starts full" 7 (Lcell.get (Lcell.make 7))

let test_lcell_on_full () =
  let c = Lcell.create () in
  let seen = ref [] in
  Lcell.on_full c (fun v -> seen := ("early", v) :: !seen);
  Lcell.on_full c (fun v -> seen := ("later", v) :: !seen);
  Alcotest.(check (list (pair string int))) "nothing before put" [] !seen;
  Lcell.put c 5;
  Alcotest.(check (list (pair string int)))
    "waiters run in registration order"
    [ ("later", 5); ("early", 5) ]
    !seen;
  Lcell.on_full c (fun v -> seen := ("after", v) :: !seen);
  Alcotest.(check (list (pair string int)))
    "registered-when-full runs immediately"
    [ ("after", 5); ("later", 5); ("early", 5) ]
    !seen

let test_lcell_cross_domain () =
  (* A parked reader on this domain is woken by a put on another. *)
  let c = Lcell.create () in
  let writer =
    Domain.spawn (fun () ->
        (* give the reader a chance to actually park *)
        for _ = 1 to 1000 do Domain.cpu_relax () done;
        Lcell.put c "hello")
  in
  Alcotest.(check string) "parked get sees the other domain's put" "hello"
    (Lcell.get c);
  Domain.join writer

let test_lcell_single_winner () =
  (* Racing puts: exactly one wins, every loser raises Double_put, and
     every reader agrees on the winner. *)
  for _ = 1 to 50 do
    let c = Lcell.create () in
    let racers =
      Array.init 4 (fun i ->
          Domain.spawn (fun () ->
              match Lcell.put c i with
              | () -> Some i
              | exception Lcell.Double_put -> None))
    in
    let winners = Array.to_list (Array.map Domain.join racers) in
    let won = List.filter_map Fun.id winners in
    Alcotest.(check int) "exactly one winner" 1 (List.length won);
    Alcotest.(check (option int)) "value is the winner's"
      (Some (Lcell.get c))
      (Some (List.hd won))
  done

(* -- Pool ------------------------------------------------------------------ *)

let test_pool_runs_everything () =
  Pool.with_pool ~domains:4 (fun pool ->
      let hits = Atomic.make 0 in
      for i = 1 to 1000 do
        Pool.submit pool ~site:i (fun () ->
            ignore (Atomic.fetch_and_add hits i))
      done;
      Pool.wait pool;
      Alcotest.(check int) "every task ran exactly once" 500500
        (Atomic.get hits);
      let (s : Pool.stats) = Pool.stats pool in
      Alcotest.(check int) "stats.domains" 4 s.Pool.domains;
      Alcotest.(check int) "executed sums to the submissions" 1000
        (Array.fold_left ( + ) 0 s.Pool.executed))

let test_pool_wait_is_reusable () =
  Pool.with_pool ~domains:2 (fun pool ->
      let r = ref 0 in
      Pool.submit pool ~site:0 (fun () -> r := 1);
      Pool.wait pool;
      Alcotest.(check int) "first batch" 1 !r;
      Pool.submit pool ~site:1 (fun () -> r := 2);
      Pool.wait pool;
      Alcotest.(check int) "second batch after an idle wait" 2 !r)

let test_pool_tasks_spawn_tasks () =
  Pool.with_pool ~domains:3 (fun pool ->
      let hits = Atomic.make 0 in
      for i = 0 to 9 do
        Pool.submit pool ~site:i (fun () ->
            for j = 0 to 9 do
              Pool.submit pool ~site:j (fun () -> Atomic.incr hits)
            done)
      done;
      Pool.wait pool;
      Alcotest.(check int) "wait covers transitively submitted work" 100
        (Atomic.get hits))

exception Boom

let test_pool_exception_propagates () =
  Pool.with_pool ~domains:2 (fun pool ->
      Pool.submit pool ~site:0 (fun () -> raise Boom);
      Pool.submit pool ~site:1 (fun () -> ());
      Alcotest.check_raises "wait re-raises the task's exception" Boom
        (fun () -> Pool.wait pool);
      (* the error is consumed: the pool keeps working afterwards *)
      let r = ref 0 in
      Pool.submit pool ~site:0 (fun () -> r := 1);
      Pool.wait pool;
      Alcotest.(check int) "pool survives" 1 !r)

let test_pool_steals_imbalanced_load () =
  (* Everything lands on site 0's deque; with more than one domain the
     others can only make progress by stealing.  On a single-core box the
     spawning domain may still drain its own deque first, so only assert
     completion plus stats consistency — and that any steal is counted. *)
  Pool.with_pool ~domains:4 (fun pool ->
      let hits = Atomic.make 0 in
      for _ = 1 to 200 do
        Pool.submit pool ~site:0 (fun () ->
            for _ = 1 to 100 do Domain.cpu_relax () done;
            Atomic.incr hits)
      done;
      Pool.wait pool;
      Alcotest.(check int) "all ran" 200 (Atomic.get hits);
      let (s : Pool.stats) = Pool.stats pool in
      let off_home =
        Array.fold_left ( + ) 0 (Array.sub s.Pool.executed 1 3)
      in
      Alcotest.(check bool) "steals counted when others executed" true
        (s.Pool.steals >= off_home && off_home >= 0))

let test_pool_rejects_bad_sizes () =
  Alcotest.check_raises "0 domains"
    (Invalid_argument "Pool.create: domains must be in 1..128") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  Alcotest.check_raises "negative chunk"
    (Invalid_argument "Pipeline.run_parallel: chunk must be >= 1") (fun () ->
      ignore
        (Pipeline.run_parallel ~chunk:0
           { Pipeline.schemas = []; initial = [] }
           []))

(* -- domain-safe metrics --------------------------------------------------- *)

let test_metrics_parallel_counters_exact () =
  Metrics.reset ();
  let c = Metrics.counter "test.par.counter" in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do Metrics.incr c done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" 40_000 (Metrics.counter_value c)

let test_metrics_parallel_histogram_exact () =
  Metrics.reset ();
  let h = Metrics.histogram "test.par.histo" in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1000 do
              Metrics.observe h ((d * 1000) + i)
            done))
  in
  Array.iter Domain.join domains;
  let stats =
    match
      List.assoc_opt "test.par.histo" (Metrics.snapshot ()).Metrics.histograms
    with
    | Some s -> s
    | None -> Alcotest.fail "histogram missing"
  in
  Alcotest.(check int) "count merges all shards" 4000 stats.Metrics.count;
  Alcotest.(check int) "sum exact" (4000 * 4001 / 2) stats.Metrics.sum;
  Alcotest.(check int) "min from shard 0" 1 stats.Metrics.min;
  Alcotest.(check int) "max from shard 3" 4000 stats.Metrics.max;
  Alcotest.(check int) "bucket totals merge" 4000
    (List.fold_left (fun acc (_, n) -> acc + n) 0 stats.Metrics.buckets)

(* -- metrics bleed regression (satellite 2) -------------------------------- *)

let test_sim_metrics_scoped_no_bleed () =
  let sc = Fdb_check.Gen.generate { Fdb_check.Gen.default_spec with seed = 11 } in
  let run () = Fdb_check.Sim.run ~seed:11 sc in
  let a = run () in
  (* pollute the global registry between runs: a bleed would show up in
     the second outcome's snapshot *)
  let noise = Metrics.counter "test.par.noise" in
  Metrics.add noise 12345;
  ignore (Fdb_check.Sim.run ~seed:99 sc);
  let b = run () in
  Alcotest.(check bool) "identical runs report identical metrics" true
    (a.Fdb_check.Sim.metrics = b.Fdb_check.Sim.metrics);
  Alcotest.(check int) "surrounding accumulation untouched" 12345
    (Metrics.counter_value noise);
  Alcotest.(check bool) "run actually recorded something" true
    (List.exists (fun (_, v) -> v > 0) a.Fdb_check.Sim.metrics.Metrics.counters)

(* -- the flagship differential property ------------------------------------ *)

let tup k s = Tuple.make [ Value.Int k; Value.Str s ]

let schemas =
  [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ];
    Schema.make ~name:"S" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]

let spec_for ~seed =
  let rand = Random.State.make [| seed; 0x9a7 |] in
  let rel name n =
    (name, List.init n (fun i -> tup (Random.State.int rand 16) (Printf.sprintf "%s%d" name i)))
  in
  {
    Pipeline.schemas;
    initial = [ rel "R" (5 + Random.State.int rand 40); rel "S" (Random.State.int rand 25) ];
  }

let q = Fdb_query.Parser.parse_exn

(* Seeded random queries over R, S and an unknown Z — same shapes as the
   serializability property in test_core, including ill-formed ones, so
   the parallel executor's error responses are differentially checked
   too. *)
let gen_queries ~seed n =
  let rand = Random.State.make [| seed; 0x9a8 |] in
  let rel () = [| "R"; "S"; "Z" |].(Random.State.int rand 3) in
  let key () = Random.State.int rand 16 in
  List.init n (fun i ->
      let src =
        match Random.State.int rand 10 with
        | 0 -> Printf.sprintf "insert (%d, \"v%d\") into %s" (key ()) i (rel ())
        | 1 -> Printf.sprintf "find %d in %s" (key ()) (rel ())
        | 2 -> Printf.sprintf "delete %d from %s" (key ()) (rel ())
        | 3 -> Printf.sprintf "select * from %s where key >= %d" (rel ()) (key ())
        | 4 -> Printf.sprintf "count %s" (rel ())
        | 5 -> Printf.sprintf "sum key from %s where key <= %d" (rel ()) (key ())
        | 6 -> Printf.sprintf "min key from %s" (rel ())
        | 7 ->
            Printf.sprintf "update %s set val = \"u%d\" where key = %d" (rel ())
              i (key ())
        | 8 -> Printf.sprintf "max val from %s" (rel ())
        | _ -> "join R and S on key = key"
      in
      (i mod 4, q src))

let check_streams name expected actual =
  Alcotest.(check int)
    (name ^ ": response count")
    (List.length expected) (List.length actual);
  List.iteri
    (fun i ((t1, r1), (t2, r2)) ->
      if t1 <> t2 || not (Pipeline.response_equal r1 r2) then
        Alcotest.failf "%s: response %d diverges: (%d) %a vs (%d) %a" name i t1
          Pipeline.pp_response r1 t2 Pipeline.pp_response r2)
    (List.combine expected actual)

let check_final name expected actual =
  List.iter2
    (fun (rel1, ts1) (rel2, ts2) ->
      Alcotest.(check string) (name ^ ": relation order") rel1 rel2;
      if not (List.equal Tuple.equal ts1 ts2) then
        Alcotest.failf "%s: final contents of %s diverge" name rel1)
    expected actual

(* One scenario: the same seeded workload under the deterministic engine
   (Ideal), the engine on a simulated 4-PE hypercube, the sequential
   reference, and the real-domain parallel executor must produce the
   same response stream and final database.  60 seeds x 2 semantics =
   120 scenarios; a shared pool keeps domain spawns amortized. *)
let differential_scenario pool ~semantics ~seed =
  let spec = spec_for ~seed in
  let tagged = gen_queries ~seed (10 + (seed mod 30)) in
  let name = Printf.sprintf "seed %d" seed in
  let ideal = Pipeline.run ~semantics spec tagged in
  let machine =
    Pipeline.run ~semantics
      ~mode:(Pipeline.On_machine (Machine.default_config (Topology.hypercube 2)))
      spec tagged
  in
  let reference = Pipeline.reference ~semantics spec tagged in
  (* a small chunk so multi-chunk floods actually happen at these sizes *)
  let par = Pipeline.run_parallel ~semantics ~chunk:8 ~pool spec tagged in
  check_streams (name ^ " par vs ideal") ideal.Pipeline.responses
    par.Pipeline.par_responses;
  check_streams (name ^ " par vs machine") machine.Pipeline.responses
    par.Pipeline.par_responses;
  check_streams (name ^ " par vs reference") reference
    par.Pipeline.par_responses;
  check_final (name ^ " final db") ideal.Pipeline.final_db
    par.Pipeline.par_final_db

let test_differential semantics () =
  Pool.with_pool ~domains:3 (fun pool ->
      for seed = 0 to 59 do
        differential_scenario pool ~semantics ~seed
      done)

let test_parallel_report_counts () =
  let spec = spec_for ~seed:1 in
  let tagged = gen_queries ~seed:1 40 in
  let par = Pipeline.run_parallel ~domains:2 ~chunk:4 spec tagged in
  Alcotest.(check int) "domains as configured" 2 par.Pipeline.par_domains;
  Alcotest.(check bool) "read floods actually produced pool tasks" true
    (par.Pipeline.par_tasks > 0)

let () =
  Alcotest.run "par"
    [
      ( "lcell",
        [
          Alcotest.test_case "single-assignment basics" `Quick
            test_lcell_basics;
          Alcotest.test_case "on_full ordering" `Quick test_lcell_on_full;
          Alcotest.test_case "cross-domain get" `Quick test_lcell_cross_domain;
          Alcotest.test_case "racing puts, one winner" `Quick
            test_lcell_single_winner;
        ] );
      ( "pool",
        [
          Alcotest.test_case "1000 tasks, exact sum" `Quick
            test_pool_runs_everything;
          Alcotest.test_case "wait barrier is reusable" `Quick
            test_pool_wait_is_reusable;
          Alcotest.test_case "tasks submit tasks" `Quick
            test_pool_tasks_spawn_tasks;
          Alcotest.test_case "exception propagates to wait" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "imbalanced load drains" `Quick
            test_pool_steals_imbalanced_load;
          Alcotest.test_case "argument validation" `Quick
            test_pool_rejects_bad_sizes;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "parallel counters exact" `Quick
            test_metrics_parallel_counters_exact;
          Alcotest.test_case "parallel histogram merges exact" `Quick
            test_metrics_parallel_histogram_exact;
          Alcotest.test_case "sim runs cannot bleed metrics" `Quick
            test_sim_metrics_scoped_no_bleed;
        ] );
      ( "differential",
        [
          Alcotest.test_case "120 scenarios: prepend" `Slow
            (test_differential Pipeline.Prepend);
          Alcotest.test_case "120 scenarios: ordered" `Slow
            (test_differential Pipeline.Ordered_unique);
          Alcotest.test_case "report counts" `Quick
            test_parallel_report_counts;
        ] );
    ]
