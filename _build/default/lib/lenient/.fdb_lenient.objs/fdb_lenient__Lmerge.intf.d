lib/lenient/lmerge.mli: Engine Fdb_kernel Llist
