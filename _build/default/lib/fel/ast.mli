(** Abstract syntax of mini-FEL, the Function Equation Language the paper's
    system was written in [13].

    The subset covers everything the paper's programs use: equations
    (including destructuring ones), lenient list/tuple construction,
    [^] (followed-by), [||] (apply-to-all), application with [:],
    conditionals, arithmetic and comparison, and equation blocks with a
    [RESULT] expression. *)

type pattern =
  | Pvar of string
  | Ptuple of string list  (** [[x, y] = ...] destructuring *)

type expr =
  | Var of string
  | Int_lit of int
  | Str_lit of string
  | Nil_lit  (** [[]] — the empty stream *)
  | List of expr list  (** [[e1, ..., en]] — lenient tuple/list *)
  | Seq of expr * expr  (** [e ^ s] — followed-by *)
  | App of expr * expr  (** [f:x] *)
  | Map of expr * expr  (** [f || s] — apply-to-all *)
  | If of expr * expr * expr
  | Binop of string * expr * expr  (** + - * / = != < <= > >= *)
  | Block of equation list * expr  (** [{ eq, ..., RESULT e }] *)

and equation =
  | Def_fun of string * pattern * expr  (** [f:p = e] *)
  | Def_val of pattern * expr  (** [x = e] or [[x, y] = e] *)

type program = { equations : equation list; result : expr }

val pp_expr : Format.formatter -> expr -> unit

val pp_program : Format.formatter -> program -> unit
