lib/rediflow/machine.ml: Array Engine Fabric Fdb_kernel Fdb_net List Queue Topology
