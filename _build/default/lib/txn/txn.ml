open Fdb_relational
module Ast = Fdb_query.Ast
module Pred = Fdb_query.Pred
module Parser = Fdb_query.Parser

type response =
  | Inserted of bool
  | Found of Tuple.t option
  | Deleted of bool
  | Selected of Tuple.t list
  | Counted of int
  | Aggregated of Value.t option
  | Updated of int
  | Joined of Tuple.t list
  | Failed of string

let response_equal a b =
  match (a, b) with
  | (Inserted x, Inserted y) -> x = y
  | (Found x, Found y) -> Option.equal Tuple.equal x y
  | (Deleted x, Deleted y) -> x = y
  | (Selected x, Selected y) -> List.equal Tuple.equal x y
  | (Counted x, Counted y) -> x = y
  | (Aggregated x, Aggregated y) -> Option.equal Value.equal x y
  | (Updated x, Updated y) -> x = y
  | (Joined x, Joined y) -> List.equal Tuple.equal x y
  | (Failed x, Failed y) -> String.equal x y
  | ( ( Inserted _ | Found _ | Deleted _ | Selected _ | Counted _
      | Aggregated _ | Updated _ | Joined _ | Failed _ ),
      _ ) ->
      false

let pp_tuples ppf ts =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Tuple.pp)
    ts

let pp_response ppf = function
  | Inserted b -> Format.fprintf ppf "inserted %b" b
  | Found None -> Format.fprintf ppf "found nothing"
  | Found (Some t) -> Format.fprintf ppf "found %a" Tuple.pp t
  | Deleted b -> Format.fprintf ppf "deleted %b" b
  | Selected ts -> Format.fprintf ppf "selected %a" pp_tuples ts
  | Counted n -> Format.fprintf ppf "counted %d" n
  | Aggregated None -> Format.fprintf ppf "aggregated nothing"
  | Aggregated (Some v) -> Format.fprintf ppf "aggregated %a" Value.pp v
  | Updated n -> Format.fprintf ppf "updated %d" n
  | Joined ts -> Format.fprintf ppf "joined %a" pp_tuples ts
  | Failed msg -> Format.fprintf ppf "failed: %s" msg

type t = Database.t -> response * Database.t

let fail db msg = (Failed msg, db)

let with_relation db rel k =
  match Database.relation db rel with
  | None -> fail db (Printf.sprintf "unknown relation %s" rel)
  | Some r -> k r

let resolve_columns schema cols =
  let rec go = function
    | [] -> Ok []
    | c :: rest -> (
        match Schema.column_index schema c with
        | None ->
            Error
              (Printf.sprintf "relation %s has no column %s"
                 (Schema.name schema) c)
        | Some i -> Result.map (fun is -> i :: is) (go rest))
  in
  go cols

let translate query : t =
  match query with
  | Ast.Insert { rel; values } ->
      fun db -> (
        match Database.insert db ~rel (Tuple.make values) with
        | Ok (db', added) -> (Inserted added, db')
        | Error e -> fail db e)
  | Ast.Find { rel; key } ->
      fun db -> (
        match Database.find db ~rel ~key with
        | Ok t -> (Found t, db)
        | Error e -> fail db e)
  | Ast.Delete { rel; key } ->
      fun db -> (
        match Database.delete db ~rel ~key with
        | Ok (db', found) -> (Deleted found, db')
        | Error e -> fail db e)
  | Ast.Select { rel; cols; where } ->
      fun db ->
        with_relation db rel (fun r ->
            let schema = Relation.schema r in
            match Pred.compile schema where with
            | Error e -> fail db e
            | Ok test -> (
                let rows = Relation.select r test in
                match cols with
                | None -> (Selected rows, db)
                | Some cs -> (
                    match resolve_columns schema cs with
                    | Error e -> fail db e
                    | Ok idxs -> (Selected (Algebra.project idxs rows), db))))
  | Ast.Count { rel } ->
      fun db -> with_relation db rel (fun r -> (Counted (Relation.size r), db))
  | Ast.Aggregate { agg; rel; col; where } ->
      fun db ->
        with_relation db rel (fun r ->
            match Pred.compile_aggregate (Relation.schema r) agg col where with
            | Error e -> fail db e
            | Ok (step, finish) ->
                ( Aggregated
                    (finish (List.fold_left step None (Relation.to_list r))),
                  db ))
  | Ast.Update { rel; col; value; where } ->
      fun db ->
        with_relation db rel (fun r ->
            match Pred.compile_update (Relation.schema r) col value where with
            | Error e -> fail db e
            | Ok rewrite ->
                let (r', changed) = Relation.update r rewrite in
                if changed = 0 then (Updated 0, db)
                else (Updated changed, Database.replace db rel r'))
  | Ast.Join { left; right; on = (lc, rc) } ->
      fun db ->
        with_relation db left (fun lr ->
            with_relation db right (fun rr ->
                match
                  ( Schema.column_index (Relation.schema lr) lc,
                    Schema.column_index (Relation.schema rr) rc )
                with
                | (None, _) ->
                    fail db
                      (Printf.sprintf "relation %s has no column %s" left lc)
                | (_, None) ->
                    fail db
                      (Printf.sprintf "relation %s has no column %s" right rc)
                | (Some li, Some ri) ->
                    ( Joined
                        (Algebra.join ~left_col:li ~right_col:ri
                           (Relation.to_list lr) (Relation.to_list rr)),
                      db )))

let translate_string src = Result.map translate (Parser.parse src)

let apply_stream txns db0 =
  let rec go db = function
    | [] -> ([], [])
    | txn :: rest ->
        let (resp, db') = txn db in
        let (resps, dbs) = go db' rest in
        (resp :: resps, db' :: dbs)
  in
  go db0 txns

let run_queries db queries =
  let (resps, dbs) = apply_stream (List.map translate queries) db in
  let final = match List.rev dbs with [] -> db | last :: _ -> last in
  (resps, final)
