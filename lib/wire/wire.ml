open Fdb_relational
module History = Fdb_txn.History

exception Corrupt of { offset : int; reason : string }

let corrupt offset fmt =
  Format.kasprintf (fun reason -> raise (Corrupt { offset; reason })) fmt

(* -- CRC32c (Castagnoli), table-driven, reflected ------------------------- *)

let crc_table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         c :=
           if Int32.logand !c 1l <> 0l then
             Int32.logxor (Int32.shift_right_logical !c 1) 0x82F63B78l
           else Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

(* Raw update: feed bytes into a running (pre-finalization) crc state. *)
let crc_feed state s pos len =
  let t = Lazy.force crc_table in
  let c = ref state in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  !c

let crc_init = 0xFFFFFFFFl
let crc_finish c = Int32.logxor c 0xFFFFFFFFl
let crc32c s = crc_finish (crc_feed crc_init s 0 (String.length s))

(* -- writer primitives ----------------------------------------------------- *)

let w_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let w_str b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_value b = function
  | Value.Int n ->
      Buffer.add_char b 'I';
      w_int b n
  | Value.Str s ->
      Buffer.add_char b 'S';
      w_str b s
  | Value.Bool v ->
      Buffer.add_char b 'B';
      w_int b (if v then 1 else 0)
  | Value.Real r ->
      Buffer.add_char b 'R';
      (* %h round-trips every finite float exactly *)
      w_str b (Printf.sprintf "%h" r)

let w_tuple b tup =
  w_int b (Tuple.arity tup);
  Array.iter (w_value b) tup

let w_backend b = function
  | Relation.List_backend -> Buffer.add_char b 'L'
  | Relation.Avl_backend -> Buffer.add_char b 'A'
  | Relation.Two3_backend -> Buffer.add_char b 'T'
  | Relation.Btree_backend k ->
      Buffer.add_char b 'B';
      w_int b k
  | Relation.Column_backend k ->
      Buffer.add_char b 'C';
      w_int b k

let w_schema b schema =
  w_str b (Schema.name schema);
  let cols = Schema.columns schema in
  w_int b (List.length cols);
  List.iter
    (fun (name, ctype) ->
      w_str b name;
      Buffer.add_char b
        (match ctype with
        | Schema.CInt -> 'i'
        | Schema.CStr -> 's'
        | Schema.CBool -> 'b'
        | Schema.CReal -> 'r'))
    cols

let w_relation_body b rel =
  let tuples = Relation.to_list rel in
  w_int b (List.length tuples);
  List.iter (w_tuple b) tuples

let relation_exn db name =
  match Database.relation db name with
  | Some r -> r
  | None -> invalid_arg "Wire: relation vanished mid-archive"

let write_int = w_int

(* -- reader primitives ------------------------------------------------------

   Positions are absolute offsets into [src], so every [Corrupt] carries a
   byte offset the caller can report against the original input. *)

type reader = { src : string; mutable pos : int }

let r_char r =
  if r.pos >= String.length r.src then
    corrupt r.pos "truncated (wanted 1 more byte)";
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_int r =
  let start = r.pos in
  while r.pos < String.length r.src && r.src.[r.pos] <> ';' do
    r.pos <- r.pos + 1
  done;
  if r.pos >= String.length r.src then corrupt start "unterminated int";
  let s = String.sub r.src start (r.pos - start) in
  r.pos <- r.pos + 1;
  match int_of_string_opt s with
  | Some n -> n
  | None -> corrupt start "bad int %S" s

let read_int src ~pos =
  let r = { src; pos } in
  let n = r_int r in
  (n, r.pos)

let r_str r =
  let at = r.pos in
  let len = r_int r in
  if len < 0 || r.pos + len > String.length r.src then
    corrupt at "bad string length %d" len;
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let r_value r =
  let at = r.pos in
  match r_char r with
  | 'I' -> Value.Int (r_int r)
  | 'S' -> Value.Str (r_str r)
  | 'B' -> Value.Bool (r_int r <> 0)
  | 'R' -> (
      match float_of_string_opt (r_str r) with
      | Some f -> Value.Real f
      | None -> corrupt at "bad float")
  | c -> corrupt at "bad value tag %C" c

let r_tuple r =
  let at = r.pos in
  let arity = r_int r in
  if arity < 0 then corrupt at "bad arity %d" arity;
  Tuple.make (List.init arity (fun _ -> r_value r))

let r_backend r =
  let at = r.pos in
  match r_char r with
  | 'L' -> Relation.List_backend
  | 'A' -> Relation.Avl_backend
  | 'T' -> Relation.Two3_backend
  | 'B' -> Relation.Btree_backend (r_int r)
  | 'C' -> Relation.Column_backend (r_int r)
  | c -> corrupt at "bad backend tag %C" c

let r_schema r =
  let at = r.pos in
  let name = r_str r in
  let ncols = r_int r in
  if ncols < 0 then corrupt at "bad column count %d" ncols;
  let cols =
    List.init ncols (fun _ ->
        let cname = r_str r in
        let ctype =
          let cat = r.pos in
          match r_char r with
          | 'i' -> Schema.CInt
          | 's' -> Schema.CStr
          | 'b' -> Schema.CBool
          | 'r' -> Schema.CReal
          | c -> corrupt cat "bad column type %C" c
        in
        (cname, ctype))
  in
  try Schema.make ~name ~cols
  with Invalid_argument m -> corrupt at "bad schema: %s" m

let r_relation_body r ~backend schema =
  let at = r.pos in
  let count = r_int r in
  if count < 0 then corrupt at "bad tuple count %d" count;
  let tuples = List.init count (fun _ -> r_tuple r) in
  match Relation.of_tuples ~backend schema tuples with
  | Ok rel -> rel
  | Error m -> corrupt at "bad relation body: %s" m

(* -- archive payloads ------------------------------------------------------- *)

let magic = "FDBSNAP1"

let encode_archive ?(changed_only = true) history =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  let n = History.length history in
  let v0 = History.version history 0 in
  let names = Database.names v0 in
  w_int b n;
  w_int b (List.length names);
  List.iter
    (fun name ->
      let rel = relation_exn v0 name in
      w_schema b (Relation.schema rel);
      w_backend b (Relation.backend rel))
    names;
  (* version 0: everything *)
  List.iter (fun name -> w_relation_body b (relation_exn v0 name)) names;
  (* later versions: indices of replaced slots, then their bodies *)
  for i = 1 to n - 1 do
    let before = History.version history (i - 1) in
    let after = History.version history i in
    let changed =
      List.filteri
        (fun _ name ->
          (not changed_only)
          || not (Database.shares_relation ~old:before after name))
        names
    in
    w_int b (List.length changed);
    List.iter
      (fun name ->
        (match List.find_index (String.equal name) names with
        | Some idx -> w_int b idx
        | None -> invalid_arg "Wire: relation vanished mid-archive");
        w_relation_body b (relation_exn after name))
      changed
  done;
  Buffer.contents b

let decode_archive_sub src ~pos =
  let r = { src; pos } in
  if
    pos + String.length magic > String.length src
    || String.sub src pos (String.length magic) <> magic
  then corrupt pos "bad magic";
  r.pos <- pos + String.length magic;
  let nversions = r_int r in
  if nversions < 1 then corrupt pos "empty archive";
  let nrelations = r_int r in
  if nrelations < 0 then corrupt pos "bad relation count %d" nrelations;
  let headers =
    Array.init nrelations (fun _ ->
        let schema = r_schema r in
        let backend = r_backend r in
        (schema, backend))
  in
  let schemas = Array.to_list (Array.map fst headers) in
  let v0 =
    Array.fold_left
      (fun db (schema, backend) ->
        Database.replace db (Schema.name schema)
          (r_relation_body r ~backend schema))
      (Database.create schemas) headers
  in
  let history = ref (History.create v0) in
  let current = ref v0 in
  for _ = 1 to nversions - 1 do
    let at = r.pos in
    let nchanged = r_int r in
    if nchanged < 0 || nchanged > nrelations then
      corrupt at "bad change count %d" nchanged;
    let db = ref !current in
    for _ = 1 to nchanged do
      let iat = r.pos in
      let idx = r_int r in
      if idx < 0 || idx >= nrelations then
        corrupt iat "bad relation index %d" idx;
      let (schema, backend) = headers.(idx) in
      db :=
        Database.replace !db (Schema.name schema)
          (r_relation_body r ~backend schema)
    done;
    current := !db;
    history := History.append !history !db
  done;
  (!history, r.pos)

let decode_archive src =
  let (history, next) = decode_archive_sub src ~pos:0 in
  if next <> String.length src then
    corrupt next "trailing bytes after archive";
  history

(* -- single-version deltas -------------------------------------------------- *)

let encode_version ~prev next =
  let b = Buffer.create 256 in
  let names = Database.names prev in
  let changed =
    List.filter
      (fun name -> not (Database.shares_relation ~old:prev next name))
      names
  in
  w_int b (List.length changed);
  List.iter
    (fun name ->
      (match List.find_index (String.equal name) names with
      | Some idx -> w_int b idx
      | None -> invalid_arg "Wire: relation vanished mid-delta");
      w_relation_body b (relation_exn next name))
    changed;
  Buffer.contents b

let decode_version_sub ~prev src ~pos =
  let r = { src; pos } in
  let names = Array.of_list (Database.names prev) in
  let nrels = Array.length names in
  let at = r.pos in
  let nchanged = r_int r in
  if nchanged < 0 || nchanged > nrels then
    corrupt at "bad change count %d" nchanged;
  let db = ref prev in
  for _ = 1 to nchanged do
    let iat = r.pos in
    let idx = r_int r in
    if idx < 0 || idx >= nrels then corrupt iat "bad relation index %d" idx;
    let rel = relation_exn prev names.(idx) in
    db :=
      Database.replace !db names.(idx)
        (r_relation_body r ~backend:(Relation.backend rel)
           (Relation.schema rel))
  done;
  (!db, r.pos)

let decode_version ~prev src =
  let (db, next) = decode_version_sub ~prev src ~pos:0 in
  if next <> String.length src then corrupt next "trailing bytes after delta";
  db

(* -- chunked column payloads -------------------------------------------------

   A whole relation as a header frame plus one frame per chunk, the chunk
   bodies column-major and typed by the schema (no per-value tags — the
   column layout pays for itself on the wire).  A [Column_backend] relation
   serializes its actual chunks; any other backend is packed into fixed
   256-row runs, so the format is backend-agnostic. *)

let column_magic = "FDBCOL1"

let generic_chunk_rows = 256

let w_col_value b ctype v =
  match (ctype, v) with
  | (Schema.CInt, Value.Int n) -> w_int b n
  | (Schema.CStr, Value.Str s) -> w_str b s
  | (Schema.CBool, Value.Bool v) -> Buffer.add_char b (if v then '1' else '0')
  | (Schema.CReal, Value.Real v) -> w_str b (Printf.sprintf "%h" v)
  | _ -> invalid_arg "Wire.encode_chunked: value does not match its column"

let r_col_value r ctype =
  match ctype with
  | Schema.CInt -> Value.Int (r_int r)
  | Schema.CStr -> Value.Str (r_str r)
  | Schema.CBool -> (
      let at = r.pos in
      match r_char r with
      | '0' -> Value.Bool false
      | '1' -> Value.Bool true
      | c -> corrupt at "bad packed bool %C" c)
  | Schema.CReal -> (
      let at = r.pos in
      match float_of_string_opt (r_str r) with
      | Some f -> Value.Real f
      | None -> corrupt at "bad packed float")

(* -- frames ------------------------------------------------------------------

   | len 4B LE | ver 1B | kind 1B | crc32c 4B LE | payload |

   The crc covers ver + kind + payload, so any bit flip past the length
   prefix is caught; a flipped length byte surfaces as a truncated payload
   or a crc mismatch.  Reading never raises: damage comes back as [Torn]. *)

type kind = Checkpoint | Delta

let format_version = '\001'
let frame_overhead = 10

let kind_char = function Checkpoint -> 'C' | Delta -> 'D'
let kind_of_char = function 'C' -> Some Checkpoint | 'D' -> Some Delta | _ -> None

let put_le32 b (v : int32) =
  for i = 0 to 3 do
    Buffer.add_char b
      (Char.chr
         (Int32.to_int
            (Int32.logand (Int32.shift_right_logical v (8 * i)) 0xFFl)))
  done

let get_le32 s pos =
  let byte i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (byte 0)
    (Int32.logor
       (Int32.shift_left (byte 1) 8)
       (Int32.logor
          (Int32.shift_left (byte 2) 16)
          (Int32.shift_left (byte 3) 24)))

let frame ~kind payload =
  let len = String.length payload in
  let b = Buffer.create (len + frame_overhead) in
  put_le32 b (Int32.of_int len);
  Buffer.add_char b format_version;
  Buffer.add_char b (kind_char kind);
  let meta = Printf.sprintf "%c%c" format_version (kind_char kind) in
  let crc =
    crc_finish (crc_feed (crc_feed crc_init meta 0 2) payload 0 len)
  in
  put_le32 b crc;
  Buffer.add_string b payload;
  Buffer.contents b

type frame_result =
  | Frame of { kind : kind; payload : string; next : int }
  | End_of_input
  | Torn of { offset : int; reason : string }

let torn offset fmt =
  Format.kasprintf (fun reason -> Torn { offset; reason }) fmt

let read_frame src ~pos =
  let len_src = String.length src in
  if pos < 0 || pos > len_src then invalid_arg "Wire.read_frame: bad pos"
  else if pos = len_src then End_of_input
  else if pos + frame_overhead > len_src then
    torn pos "truncated frame header (%d of %d bytes)" (len_src - pos)
      frame_overhead
  else
    let plen32 = get_le32 src pos in
    if Int32.compare plen32 0l < 0 || Int32.compare plen32 0x7FFFFFFFl >= 0
    then torn pos "implausible payload length"
    else
      let plen = Int32.to_int plen32 in
      if src.[pos + 4] <> format_version then
        torn (pos + 4) "unknown format version %d" (Char.code src.[pos + 4])
      else
        match kind_of_char src.[pos + 5] with
        | None -> torn (pos + 5) "unknown frame kind %C" src.[pos + 5]
        | Some kind ->
            if pos + frame_overhead + plen > len_src then
              torn
                (pos + frame_overhead)
                "truncated payload (%d of %d bytes)"
                (len_src - pos - frame_overhead)
                plen
            else
              let stored = get_le32 src (pos + 6) in
              let crc =
                crc_finish
                  (crc_feed
                     (crc_feed crc_init src (pos + 4) 2)
                     src
                     (pos + frame_overhead)
                     plen)
              in
              if not (Int32.equal crc stored) then
                torn pos "checksum mismatch (stored %08lx, computed %08lx)"
                  stored crc
              else
                Frame
                  {
                    kind;
                    payload = String.sub src (pos + frame_overhead) plen;
                    next = pos + frame_overhead + plen;
                  }

let encode_chunked rel =
  let schema = Relation.schema rel in
  let ctypes = Array.of_list (List.map snd (Schema.columns schema)) in
  let ncols = Array.length ctypes in
  let chunks =
    match Relation.backend rel with
    | Relation.Column_backend _ -> Relation.column_chunks rel
    | _ ->
        let tuples = Array.of_list (Relation.to_list rel) in
        let n = Array.length tuples in
        let nchunks = (n + generic_chunk_rows - 1) / generic_chunk_rows in
        Array.init nchunks (fun ci ->
            let lo = ci * generic_chunk_rows in
            let len = min generic_chunk_rows (n - lo) in
            Array.init ncols (fun j ->
                Array.init len (fun i -> Tuple.get tuples.(lo + i) j)))
  in
  let header = Buffer.create 64 in
  Buffer.add_string header column_magic;
  w_schema header schema;
  w_backend header (Relation.backend rel);
  w_int header (Array.length chunks);
  w_int header (Relation.size rel);
  let out = Buffer.create 4096 in
  Buffer.add_string out (frame ~kind:Checkpoint (Buffer.contents header));
  Array.iter
    (fun cols ->
      if Array.length cols <> ncols then
        invalid_arg "Wire.encode_chunked: chunk width differs from the schema";
      let rows = if ncols = 0 then 0 else Array.length cols.(0) in
      let b = Buffer.create (rows * 8) in
      w_int b rows;
      Array.iteri
        (fun j col ->
          if Array.length col <> rows then
            invalid_arg "Wire.encode_chunked: ragged chunk";
          Array.iter (w_col_value b ctypes.(j)) col)
        cols;
      Buffer.add_string out (frame ~kind:Delta (Buffer.contents b)))
    chunks;
  Buffer.contents out

(* Validate the frame at [pos] (CRC) and hand back an in-place reader over
   its payload, so [Corrupt] offsets stay absolute in [src]. *)
let chunk_frame src ~pos ~expect =
  match read_frame src ~pos with
  | End_of_input -> corrupt pos "truncated chunk stream"
  | Torn { offset; reason } -> corrupt offset "torn frame: %s" reason
  | Frame { kind; next; _ } ->
      if kind <> expect then corrupt pos "unexpected frame kind";
      ({ src; pos = pos + frame_overhead }, next)

let decode_chunked src =
  let (r, next) = chunk_frame src ~pos:0 ~expect:Checkpoint in
  let at = r.pos in
  if
    r.pos + String.length column_magic > String.length src
    || String.sub src r.pos (String.length column_magic) <> column_magic
  then corrupt at "bad magic";
  r.pos <- r.pos + String.length column_magic;
  let schema = r_schema r in
  let backend = r_backend r in
  let nchunks = r_int r in
  if nchunks < 0 then corrupt at "bad chunk count %d" nchunks;
  let nrows = r_int r in
  if nrows < 0 then corrupt at "bad row count %d" nrows;
  if r.pos <> next then corrupt r.pos "trailing bytes in chunk header";
  let ctypes = Array.of_list (List.map snd (Schema.columns schema)) in
  let ncols = Array.length ctypes in
  let pos = ref next in
  let tuples = ref [] in
  let total = ref 0 in
  for _ = 1 to nchunks do
    let (r, next) = chunk_frame src ~pos:!pos ~expect:Delta in
    let at = r.pos in
    let rows = r_int r in
    if rows < 0 then corrupt at "bad chunk row count %d" rows;
    let cols =
      Array.map (fun ctype -> Array.init rows (fun _ -> r_col_value r ctype)) ctypes
    in
    if r.pos <> next then corrupt r.pos "trailing bytes in chunk";
    for i = rows - 1 downto 0 do
      tuples := Tuple.make (List.init ncols (fun j -> cols.(j).(i))) :: !tuples
    done;
    total := !total + rows;
    pos := next
  done;
  (match read_frame src ~pos:!pos with
  | End_of_input -> ()
  | Torn { offset; reason } -> corrupt offset "torn frame: %s" reason
  | Frame _ -> corrupt !pos "trailing bytes after chunk stream");
  if !total <> nrows then
    corrupt !pos "row count mismatch (header %d, chunks %d)" nrows !total;
  match Relation.of_tuples ~backend schema (List.rev !tuples) with
  | Ok rel -> rel
  | Error m -> corrupt 0 "bad chunked relation: %s" m
