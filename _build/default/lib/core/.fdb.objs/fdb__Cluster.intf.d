lib/core/cluster.mli: Fdb_net Fdb_query Pipeline Topology
