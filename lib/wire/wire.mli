(** The shared codec: one frame format for network and disk.

    {!Fdb_replica} ships version archives over the network and {!Fdb_wal}
    appends them to disk; both speak this format.  A {e frame} is a
    length-prefixed, CRC32c-checksummed record with a format version byte:

    {v
      +--------+-----+------+--------+===========+
      | len    | ver | kind | crc32c | payload   |
      | 4B LE  | 1B  | 1B   | 4B LE  | len bytes |
      +--------+-----+------+--------+===========+
    v}

    The checksum covers the version byte, the kind byte and the payload, so
    a bit flip anywhere past the length prefix is detected.  {!read_frame}
    never raises on torn input: a truncated header, short payload, unknown
    version/kind or checksum mismatch comes back as {!Torn}, which is what
    lets a log reader stop cleanly at the first damaged record instead of
    crashing.  Structural corruption {e inside} a checksum-valid payload —
    which a torn write cannot produce — raises {!Corrupt}.

    Payload codecs: a whole {!Fdb_txn.History.t} (version 0 in full, later
    versions as changed-relation deltas exploiting structure sharing — the
    encoding {!Fdb_replica} proved over the network) and a single-version
    delta against a known predecessor (the WAL record). *)

open Fdb_relational

exception Corrupt of { offset : int; reason : string }
(** Structurally invalid input.  [offset] is the byte position in the
    string handed to the decoder where decoding failed. *)

val crc32c : string -> int32
(** CRC32c (Castagnoli) of the whole string; the frame checksum. *)

(** {1 Frames} *)

type kind = Checkpoint | Delta

val frame : kind:kind -> string -> string
(** Wrap a payload in a framed record as diagrammed above. *)

val frame_overhead : int
(** Header bytes per frame (10). *)

type frame_result =
  | Frame of { kind : kind; payload : string; next : int }
      (** a whole, checksum-valid frame; [next] is the offset just past it *)
  | End_of_input  (** [pos] is exactly the end of the input — a clean end *)
  | Torn of { offset : int; reason : string }
      (** truncated, checksum-corrupt or unrecognized — never raises *)

val read_frame : string -> pos:int -> frame_result

(** {1 Archive payloads} *)

val encode_archive : ?changed_only:bool -> Fdb_txn.History.t -> string
(** Delta encoding by default: version 0 full, later versions changed
    relations only.  [~changed_only:false] writes every version in full
    (the no-sharing control for the ablation). *)

val decode_archive : string -> Fdb_txn.History.t
(** Inverse of {!encode_archive}, up to physical representation inside a
    relation (tuples are bulk-reloaded into the recorded backend); decoded
    versions share unchanged relation slots.  Must consume the whole
    string.
    @raise Corrupt on invalid input or trailing bytes. *)

val decode_archive_sub : string -> pos:int -> Fdb_txn.History.t * int
(** [decode_archive_sub s ~pos] decodes one archive starting at [pos] and
    returns it with the offset just past the bytes it consumed — for
    embedding an archive inside a larger payload.
    @raise Corrupt on invalid input. *)

(** {1 Single-version deltas} *)

val encode_version : prev:Database.t -> Database.t -> string
(** The relations of [next] not physically shared with [prev]
    ({!Fdb_relational.Database.shares_relation}), as slot indices and
    bodies — the WAL record for one committed version.  [prev] and [next]
    must have the same relation set (the invariant {!Database} enforces). *)

val decode_version_sub :
  prev:Database.t -> string -> pos:int -> Database.t * int
(** Apply an encoded delta to [prev], returning the reconstructed version
    and the offset just past the bytes consumed.  Unchanged slots are
    physically shared with [prev].
    @raise Corrupt on invalid input. *)

val decode_version : prev:Database.t -> string -> Database.t
(** {!decode_version_sub} over the whole string.
    @raise Corrupt on invalid input or trailing bytes. *)

(** {1 Chunked column payloads} *)

val encode_chunked : Relation.t -> string
(** A whole relation as a self-delimiting frame stream: one
    {!constructor:Checkpoint} header frame (schema, backend, chunk and row
    counts) followed by one {!constructor:Delta} frame per chunk, the
    chunk bodies packed column-major and typed by the schema — no
    per-value tags, the column layout's compact binary form.  A
    {!Fdb_relational.Relation.Column_backend} relation writes its actual
    chunks; any other backend is packed into fixed 256-row runs, so the
    format is backend-agnostic.  Each chunk rides its own CRC32c frame, so
    torn writes and bit flips are detected per chunk. *)

val decode_chunked : string -> Relation.t
(** Inverse of {!encode_chunked}; tuples are bulk-reloaded into the
    recorded backend (the column backend's O(n log n) pack path).  Must
    consume the whole string.
    @raise Corrupt on torn or truncated frames, checksum mismatch,
    structural damage or trailing bytes. *)

(** {1 Varint helpers}

    The self-delimiting integer encoding the payload codecs use (decimal
    digits, [';']-terminated) — exposed so layered formats (e.g. the WAL's
    version-index prefix on each delta payload) stay in one codec. *)

val write_int : Buffer.t -> int -> unit

val read_int : string -> pos:int -> int * int
(** [read_int s ~pos] is [(n, next)].
    @raise Corrupt on a malformed or unterminated integer. *)
