lib/relational/database.ml: Format List Option Printf Relation Result Schema String
