examples/lazy_streams.mli:
