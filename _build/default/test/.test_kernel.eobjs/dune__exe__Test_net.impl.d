test/test_net.ml: Alcotest Fabric Fdb_net List Printf QCheck2 QCheck_alcotest Random Reliable Topology
