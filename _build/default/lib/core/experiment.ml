open Fdb_kernel
open Fdb_net
open Fdb_rediflow
open Fdb_relational
module W = Fdb_workload.Workload
module M = Fdb_merge.Merge
module Ast = Fdb_query.Ast

let merged_workload (w : W.t) =
  List.map
    (fun t -> (t.M.tag, t.M.item))
    (M.merge M.Arrival_order w.W.client_streams)

let grid = List.concat_map
    (fun pct -> List.map (fun k -> (pct, k)) W.paper_relation_counts)
    W.paper_insert_percentages

let workload_for ?(transactions = 50) ?(initial_tuples = 50) ?(seed = 42) pct k =
  W.generate
    { W.default_spec with
      transactions;
      initial_tuples;
      relations = k;
      insert_pct = pct;
      seed }

(* -- Table I --------------------------------------------------------------- *)

type concurrency_cell = {
  c_pct : float;
  c_relations : int;
  c_max_ply : int;
  c_avg_ply : float;
  c_tasks : int;
  c_cycles : int;
}

let table1 ?transactions ?initial_tuples ?seed ?semantics () =
  List.map
    (fun (pct, k) ->
      let w = workload_for ?transactions ?initial_tuples ?seed pct k in
      let report =
        Pipeline.run ?semantics (Pipeline.db_spec_of_workload w)
          (merged_workload w)
      in
      let s = report.Pipeline.stats in
      {
        c_pct = pct;
        c_relations = k;
        c_max_ply = s.Engine.max_ply;
        c_avg_ply = s.Engine.avg_ply;
        c_tasks = s.Engine.tasks;
        c_cycles = s.Engine.cycles;
      })
    grid

let cell_for cells pct k =
  List.find (fun c -> c.c_pct = pct && c.c_relations = k) cells

let pp_table1 ppf cells =
  Format.fprintf ppf "percent      number of relations@,";
  Format.fprintf ppf "updates    %14s %14s %14s@," "5" "3" "1";
  Format.fprintf ppf "           %14s %14s %14s@," "max / avg" "max / avg"
    "max / avg";
  List.iter
    (fun pct ->
      Format.fprintf ppf "%5.0f%%    " pct;
      List.iter
        (fun k ->
          let c = cell_for cells pct k in
          Format.fprintf ppf " %6d / %5.1f" c.c_max_ply c.c_avg_ply)
        W.paper_relation_counts;
      Format.pp_print_cut ppf ())
    W.paper_insert_percentages

(* -- Tables II and III ------------------------------------------------------ *)

type speedup_cell = {
  s_pct : float;
  s_relations : int;
  s_speedup : float;
  s_utilization : float;
  s_migrations : int;
  s_messages : int;
  s_cycles : int;
}

let speedup_table ?transactions ?initial_tuples ?seed ?semantics topo =
  List.map
    (fun (pct, k) ->
      let w = workload_for ?transactions ?initial_tuples ?seed pct k in
      let report =
        Pipeline.run ?semantics
          ~mode:(Pipeline.On_machine (Machine.default_config topo))
          (Pipeline.db_spec_of_workload w)
          (merged_workload w)
      in
      let s = report.Pipeline.stats in
      let m = Option.get report.Pipeline.machine in
      {
        s_pct = pct;
        s_relations = k;
        s_speedup = Option.get report.Pipeline.speedup;
        s_utilization = Machine.utilization m ~cycles:s.Engine.cycles;
        s_migrations = m.Machine.migrations;
        s_messages = m.Machine.net.Fabric.sent;
        s_cycles = s.Engine.cycles;
      })
    grid

let table2 ?seed () = speedup_table ?seed (Topology.hypercube 3)
let table3 ?seed () = speedup_table ?seed (Topology.mesh3d 3 3 3)

let pp_speedup_table ppf cells =
  Format.fprintf ppf "percent      number of relations@,";
  Format.fprintf ppf "updates    %6s %6s %6s@," "5" "3" "1";
  List.iter
    (fun pct ->
      Format.fprintf ppf "%5.0f%%    " pct;
      List.iter
        (fun k ->
          let c =
            List.find (fun c -> c.s_pct = pct && c.s_relations = k) cells
          in
          Format.fprintf ppf " %6.1f" c.s_speedup)
        W.paper_relation_counts;
      Format.pp_print_cut ppf ())
    W.paper_insert_percentages

(* -- Figure 2-1 ------------------------------------------------------------- *)

let fig21 ppf () =
  Format.fprintf ppf
    "@[<v>Figure 2-1: transaction application as a functional program@,@,";
  Format.fprintf ppf
    "  old-databases = initial-database ^ new-databases@,\
    \  [responses, new-databases] = apply-stream:[transactions, old-databases]@,@,";
  let schemas =
    [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]
  in
  let spec =
    {
      Pipeline.schemas;
      initial = [ ("R", [ Tuple.make [ Value.Int 1; Value.Str "one" ] ]) ];
    }
  in
  let queries =
    List.map
      (fun s -> (0, Fdb_query.Parser.parse_exn s))
      [ "insert (2, \"two\") into R"; "find 2 in R"; "count R" ]
  in
  let report = Pipeline.run spec queries in
  Format.fprintf ppf "three transactions through apply-stream:@,";
  List.iteri
    (fun i ((_, q), (_, r)) ->
      Format.fprintf ppf "  txn %d: %-28s -> %a@," i (Ast.to_string q)
        Pipeline.pp_response r)
    (List.combine queries report.Pipeline.responses);
  Format.fprintf ppf
    "engine: %d unit tasks over %d cycles (every version shares the@,\
    \        untouched relations of its predecessor)@]@."
    report.Pipeline.stats.Engine.tasks report.Pipeline.stats.Engine.cycles

(* -- Figure 2-2 / section 3.3 ----------------------------------------------- *)

type sharing_row = {
  h_n : int;
  h_pages : int;
  h_rebuilt : int;
  h_shared : int;
  h_fraction : float;
}

module IntBt = Fdb_persistent.Btree.Make (Fdb_persistent.Ordered.Int)

let fig22 ?(branching = 8) ?(sizes = [ 50; 100; 1000; 10000; 100000 ]) () =
  List.map
    (fun n ->
      let t = IntBt.of_list ~branching (List.init n (fun i -> 2 * i)) in
      let t' = IntBt.insert (2 * n) t in
      let (shared, total) = IntBt.shared_pages ~old:t t' in
      {
        h_n = n;
        h_pages = total;
        h_rebuilt = total - shared;
        h_shared = shared;
        h_fraction = float_of_int (total - shared) /. float_of_int total;
      })
    sizes

let pp_fig22 ppf rows =
  Format.fprintf ppf "%10s %8s %8s %8s %10s@," "tuples" "pages" "rebuilt"
    "shared" "fraction";
  List.iter
    (fun r ->
      Format.fprintf ppf "%10d %8d %8d %8d %10.5f@," r.h_n r.h_pages
        r.h_rebuilt r.h_shared r.h_fraction)
    rows

(* -- Figure 2-3 ------------------------------------------------------------- *)

let fig23 ppf () =
  (* The paper's exact example: two input streams whose merge decomposes
     into a de-facto parallel schedule. *)
  let stream1 = [ "insert (10, \"x\") into R"; "find 10 in R";
                  "insert (20, \"y\") into S" ]
  and stream2 = [ "insert (30, \"z\") into S"; "find 30 in S" ] in
  let parse = Fdb_query.Parser.parse_exn in
  let merged =
    M.merge M.Arrival_order
      [ List.map parse stream1; List.map parse stream2 ]
  in
  let tagged = List.map (fun t -> (t.M.tag, t.M.item)) merged in
  let schemas =
    List.map
      (fun name ->
        Schema.make ~name
          ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ])
      [ "R"; "S" ]
  in
  let initial =
    [ ("R", List.init 4 (fun i -> Tuple.make
                             [ Value.Int i; Value.Str (string_of_int i) ]));
      ("S", List.init 4 (fun i -> Tuple.make
                             [ Value.Int (100 + i); Value.Str "s" ])) ]
  in
  let spec = { Pipeline.schemas; initial } in
  let report = Pipeline.run ~trace:true spec tagged in
  Format.fprintf ppf "@[<v>Figure 2-3: merging and decomposition@,@,";
  Format.fprintf ppf "input stream 1 (user A):@,";
  List.iter (fun q -> Format.fprintf ppf "  %s@," q) stream1;
  Format.fprintf ppf "input stream 2 (user B):@,";
  List.iter (fun q -> Format.fprintf ppf "  %s@," q) stream2;
  Format.fprintf ppf "@,merged transaction stream:@,";
  List.iter
    (fun t ->
      Format.fprintf ppf "  [user %c] %s@,"
        (if t.M.tag = 0 then 'A' else 'B')
        (Ast.to_string t.M.item))
    merged;
  Format.fprintf ppf "@,de-facto parallel execution schedule (cycle: tasks):@,";
  let by_cycle = Hashtbl.create 16 in
  List.iter
    (fun (cycle, label) ->
      let old = Option.value ~default:[] (Hashtbl.find_opt by_cycle cycle) in
      Hashtbl.replace by_cycle cycle (label :: old))
    report.Pipeline.stats.Engine.trace;
  let cycles = List.sort_uniq compare (Hashtbl.fold (fun c _ acc -> c :: acc) by_cycle []) in
  List.iter
    (fun c ->
      Format.fprintf ppf "  %3d: %s@," c
        (String.concat "  " (List.rev (Hashtbl.find by_cycle c))))
    cycles;
  Format.fprintf ppf "@,responses:@,";
  List.iter
    (fun (tag, r) ->
      Format.fprintf ppf "  [user %c] %a@,"
        (if tag = 0 then 'A' else 'B')
        Pipeline.pp_response r)
    report.Pipeline.responses;
  Format.fprintf ppf "(max ply %d, avg ply %.1f over %d cycles)@]@."
    report.Pipeline.stats.Engine.max_ply report.Pipeline.stats.Engine.avg_ply
    report.Pipeline.stats.Engine.cycles

(* -- Ablation: relation representation -------------------------------------- *)

type repr_row = {
  r_backend : string;
  r_n : int;
  r_units_per_insert : float;
  r_shared_fraction : float;
}

let ablation_repr ?(sizes = [ 50; 500; 5000 ]) () =
  let backends =
    [ Relation.List_backend; Relation.Avl_backend; Relation.Two3_backend;
      Relation.Btree_backend 8 ]
  in
  let schema =
    Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ]
  in
  List.concat_map
    (fun backend ->
      List.map
        (fun n ->
          let tuples =
            List.init n (fun i ->
                Tuple.make [ Value.Int (2 * i); Value.Str "v" ])
          in
          let rel =
            match Relation.of_tuples ~backend schema tuples with
            | Ok r -> r
            | Error e -> failwith e
          in
          (* Average the reconstruction cost of 20 inserts at scattered
             key positions. *)
          let meter = Fdb_persistent.Meter.create () in
          let probes = List.init 20 (fun i -> (i * 2 * n / 20) + 1) in
          let last =
            List.fold_left
              (fun _ key ->
                match
                  Relation.insert ~meter rel
                    (Tuple.make [ Value.Int key; Value.Str "new" ])
                with
                | Ok (r', _) -> Some r'
                | Error e -> failwith e)
              None probes
          in
          let (shared, total) =
            Relation.shared_units ~old:rel (Option.get last)
          in
          {
            r_backend = Relation.backend_name backend;
            r_n = n;
            r_units_per_insert =
              float_of_int (Fdb_persistent.Meter.allocs meter)
              /. float_of_int (List.length probes);
            r_shared_fraction = float_of_int shared /. float_of_int total;
          })
        sizes)
    backends

let pp_ablation_repr ppf rows =
  Format.fprintf ppf "%10s %8s %18s %14s@," "backend" "tuples"
    "rebuilt units/ins" "shared fraction";
  List.iter
    (fun r ->
      Format.fprintf ppf "%10s %8d %18.1f %14.4f@," r.r_backend r.r_n
        r.r_units_per_insert r.r_shared_fraction)
    rows

(* -- Ablation: topology and load balancing ----------------------------------- *)

type topo_row = {
  t_name : string;
  t_pes : int;
  t_balance : bool;
  t_speedup : float;
  t_cycles : int;
  t_migrations : int;
}

let ablation_topo ?(seed = 42) () =
  let topos =
    [ Topology.single (); Topology.ring 8; Topology.star 8;
      Topology.hypercube 3; Topology.torus2d 3 3; Topology.mesh3d 3 3 3;
      Topology.hypercube 4; Topology.bus 8 ]
  in
  let w = workload_for ~seed 14.0 3 in
  let spec = Pipeline.db_spec_of_workload w in
  let tagged = merged_workload w in
  List.concat_map
    (fun topo ->
      List.map
        (fun balance ->
          let cfg = { (Machine.default_config topo) with Machine.balance } in
          let report =
            Pipeline.run ~mode:(Pipeline.On_machine cfg) spec tagged
          in
          let m = Option.get report.Pipeline.machine in
          {
            t_name = Topology.name topo;
            t_pes = Topology.size topo;
            t_balance = balance;
            t_speedup = Option.get report.Pipeline.speedup;
            t_cycles = report.Pipeline.stats.Engine.cycles;
            t_migrations = m.Machine.migrations;
          })
        [ true; false ])
    topos

let pp_ablation_topo ppf rows =
  Format.fprintf ppf "%14s %5s %9s %9s %8s %11s@," "topology" "PEs" "balance"
    "speedup" "cycles" "migrations";
  List.iter
    (fun r ->
      Format.fprintf ppf "%14s %5d %9s %9.2f %8d %11d@," r.t_name r.t_pes
        (if r.t_balance then "on" else "off")
        r.t_speedup r.t_cycles r.t_migrations)
    rows

(* -- Ablation: merge policy --------------------------------------------------- *)

type merge_row = {
  m_policy : string;
  m_clients : int;
  m_max_ply : int;
  m_avg_ply : float;
  m_serializable : bool;
}

let ablation_merge ?(seed = 42) () =
  let policies =
    [ ("arrival", M.Arrival_order); ("bursty", M.Eager_clients [ 3; 1 ]);
      ("random", M.Seeded 7); ("concat", M.Concatenated) ]
  in
  List.concat_map
    (fun clients ->
      let w =
        W.generate { W.default_spec with W.clients; seed; insert_pct = 14.0 }
      in
      let spec = Pipeline.db_spec_of_workload w in
      List.map
        (fun (name, policy) ->
          let tagged =
            List.map
              (fun t -> (t.M.tag, t.M.item))
              (M.merge policy w.W.client_streams)
          in
          let report = Pipeline.run spec tagged in
          let ok =
            match Pipeline.check_serializable spec tagged with
            | Ok _ -> true
            | Error _ -> false
          in
          {
            m_policy = name;
            m_clients = clients;
            m_max_ply = report.Pipeline.stats.Engine.max_ply;
            m_avg_ply = report.Pipeline.stats.Engine.avg_ply;
            m_serializable = ok;
          })
        policies)
    [ 2; 4; 8 ]

let pp_ablation_merge ppf rows =
  Format.fprintf ppf "%8s %8s %8s %8s %14s@," "policy" "clients" "max ply"
    "avg ply" "serializable";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8s %8d %8d %8.1f %14b@," r.m_policy r.m_clients
        r.m_max_ply r.m_avg_ply r.m_serializable)
    rows

(* -- Ablation: engine-level representation ----------------------------------- *)

type engine_repr_row = {
  e_repr : string;
  e_pct : float;
  e_tasks : int;
  e_cycles : int;
  e_max_ply : int;
  e_avg_ply : float;
}

let ablation_engine_repr ?(seed = 42) () =
  let module Llist = Fdb_lenient.Llist in
  let module Ltree = Fdb_lenient.Ltree in
  let n = 50 and ops = 50 in
  (* Deterministic op stream: `Ins of a fresh odd key, `Find of an existing
     even key; kinds shuffled. *)
  let plan pct =
    let rand = Random.State.make [| seed |] in
    let n_ins = int_of_float (Float.round (pct *. float_of_int ops /. 100.0)) in
    let kinds = Array.init ops (fun i -> if i < n_ins then `Ins else `Find) in
    for i = ops - 1 downto 1 do
      let j = Random.State.int rand (i + 1) in
      let tmp = kinds.(i) in
      kinds.(i) <- kinds.(j);
      kinds.(j) <- tmp
    done;
    Array.to_list
      (Array.map (fun kind -> (kind, 2 * Random.State.int rand n)) kinds)
  in
  (* Issue one operation per cycle down a token chain carrying the current
     version, like the pipeline's dispatch; [step] launches the cell-level
     work and returns the next version. *)
  let run_chain eng initial step pct =
    let fresh = ref ((2 * n) + 1) in
    let rec chain token = function
      | [] -> ()
      | (kind, key) :: rest ->
          let next = Engine.ivar eng in
          Engine.await ~label:"dispatch" token (fun state ->
              let op =
                match kind with
                | `Ins ->
                    let x = !fresh in
                    fresh := x + 2;
                    `Ins x
                | `Find -> `Find key
              in
              Engine.put next (step state op));
          chain next rest
    in
    let first = Engine.ivar eng in
    chain first (plan pct);
    Engine.spawn eng (fun () -> Engine.put first initial);
    Engine.run eng
  in
  let run_list pct =
    let eng = Engine.create () in
    let initial = Llist.of_list eng (List.init n (fun i -> 2 * i)) in
    let step state = function
      | `Ins x -> fst (Llist.insert_unique eng ~cmp:compare x state)
      | `Find key ->
          ignore
            (Llist.find_until eng ~stop:(fun y -> y > key)
               (fun y -> y = key)
               state);
          state
    in
    run_chain eng initial step pct
  in
  let run_tree pct =
    let eng = Engine.create () in
    let initial =
      Ltree.of_list eng ~cmp:compare (List.init n (fun i -> 2 * i))
    in
    let step state = function
      | `Ins x -> fst (Ltree.insert eng ~cmp:compare x state)
      | `Find key ->
          ignore (Ltree.find eng ~cmp:compare key state);
          state
    in
    run_chain eng initial step pct
  in
  List.concat_map
    (fun pct ->
      let mk name (s : Engine.run_stats) =
        {
          e_repr = name;
          e_pct = pct;
          e_tasks = s.Engine.tasks;
          e_cycles = s.Engine.cycles;
          e_max_ply = s.Engine.max_ply;
          e_avg_ply = s.Engine.avg_ply;
        }
      in
      [ mk "list" (run_list pct); mk "two3" (run_tree pct) ])
    W.paper_insert_percentages

let pp_ablation_engine_repr ppf rows =
  Format.fprintf ppf "%6s %6s %8s %8s %8s %8s@," "repr" "upd%" "tasks"
    "cycles" "max ply" "avg ply";
  List.iter
    (fun r ->
      Format.fprintf ppf "%6s %6.0f %8d %8d %8d %8.1f@," r.e_repr r.e_pct
        r.e_tasks r.e_cycles r.e_max_ply r.e_avg_ply)
    rows

(* -- Scaling beyond the paper's point ----------------------------------------- *)

type scaling_row = {
  g_transactions : int;
  g_tuples : int;
  g_max_ply : int;
  g_avg_ply : float;
  g_cycles : int;
  g_tasks : int;
}

let scaling ?(seed = 42) () =
  List.concat_map
    (fun transactions ->
      List.map
        (fun tuples ->
          let w =
            workload_for ~transactions ~initial_tuples:tuples ~seed 14.0 3
          in
          let report =
            Pipeline.run (Pipeline.db_spec_of_workload w) (merged_workload w)
          in
          let s = report.Pipeline.stats in
          {
            g_transactions = transactions;
            g_tuples = tuples;
            g_max_ply = s.Engine.max_ply;
            g_avg_ply = s.Engine.avg_ply;
            g_cycles = s.Engine.cycles;
            g_tasks = s.Engine.tasks;
          })
        [ 50; 200 ])
    [ 25; 50; 100; 200 ]

let pp_scaling ppf rows =
  Format.fprintf ppf "%8s %8s %8s %8s %8s %8s@," "txns" "tuples" "max ply"
    "avg ply" "cycles" "tasks";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8d %8d %8d %8.1f %8d %8d@," r.g_transactions
        r.g_tuples r.g_max_ply r.g_avg_ply r.g_cycles r.g_tasks)
    rows

(* -- Ablation: insert semantics ----------------------------------------------- *)

type semantics_row = {
  x_semantics : string;
  x_pct : float;
  x_max_ply : int;
  x_avg_ply : float;
  x_tasks : int;
}

let ablation_semantics ?(seed = 42) () =
  List.concat_map
    (fun (name, semantics) ->
      List.map
        (fun pct ->
          let w = workload_for ~seed pct 3 in
          let report =
            Pipeline.run ~semantics (Pipeline.db_spec_of_workload w)
              (merged_workload w)
          in
          let s = report.Pipeline.stats in
          {
            x_semantics = name;
            x_pct = pct;
            x_max_ply = s.Engine.max_ply;
            x_avg_ply = s.Engine.avg_ply;
            x_tasks = s.Engine.tasks;
          })
        W.paper_insert_percentages)
    [ ("prepend", Pipeline.Prepend); ("ordered", Pipeline.Ordered_unique) ]

let pp_ablation_semantics ppf rows =
  Format.fprintf ppf "%10s %6s %8s %8s %8s@," "semantics" "upd%" "max ply"
    "avg ply" "tasks";
  List.iter
    (fun r ->
      Format.fprintf ppf "%10s %6.0f %8d %8.1f %8d@," r.x_semantics r.x_pct
        r.x_max_ply r.x_avg_ply r.x_tasks)
    rows
