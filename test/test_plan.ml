(* Access-path planner tests: predicate analysis, pruned range folds and
   single-traversal updates on every backend, planner-executed queries vs
   naive full-scan references (property), hash-join/sort-merge algebra
   equivalences, and Sim-driven histories through the new executor. *)

open Fdb_relational
module Ast = Fdb_query.Ast
module Pred = Fdb_query.Pred
module Plan = Fdb_query.Plan
module Txn = Fdb_txn.Txn
module Meter = Fdb_persistent.Meter
module Gen = Fdb_check.Gen
module Oracle = Fdb_check.Oracle
module Sim = Fdb_check.Sim

let schema =
  Schema.make ~name:"R"
    ~cols:[ ("key", Schema.CInt); ("num", Schema.CInt); ("val", Schema.CStr) ]

let backends =
  [ Relation.List_backend; Relation.Avl_backend; Relation.Two3_backend;
    Relation.Btree_backend 4; Relation.Column_backend 4 ]

let tup k =
  Tuple.make
    [ Value.Int k; Value.Int (k * 7 mod 13);
      Value.Str (String.make 1 (Char.chr (97 + (k mod 5)))) ]

let mk_rel backend n =
  match Relation.of_tuples ~backend schema (List.init n tup) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let response_t = Alcotest.testable Txn.pp_response Txn.response_equal

(* -- predicate analysis -------------------------------------------------- *)

let cmp c op v = Ast.Cmp (c, op, Value.Int v)

let plan_str p = Plan.to_string (Plan.analyze schema p)

let test_analyze_point () =
  (match Plan.analyze schema (Ast.And (cmp "key" Ast.Eq 5, cmp "num" Ast.Gt 2)) with
  | { Plan.path = Plan.Point_lookup (Value.Int 5);
      residual = Ast.Cmp ("num", Ast.Gt, Value.Int 2) } ->
      ()
  | p -> Alcotest.failf "point: %s" (Plan.to_string p));
  (* a second key equality stays residual (agrees or falsifies) *)
  match Plan.analyze schema (Ast.And (cmp "key" Ast.Eq 1, cmp "key" Ast.Eq 2)) with
  | { Plan.path = Plan.Point_lookup (Value.Int 1);
      residual = Ast.Cmp ("key", Ast.Eq, Value.Int 2) } ->
      ()
  | p -> Alcotest.failf "double eq: %s" (Plan.to_string p)

let test_analyze_range_tightens () =
  let p =
    Ast.And
      ( Ast.And (cmp "key" Ast.Gt 2, cmp "key" Ast.Ge 4),
        Ast.And (cmp "key" Ast.Lt 10, cmp "key" Ast.Le 9) )
  in
  (match Plan.analyze schema p with
  | { Plan.path =
        Plan.Range_scan
          { lo = Some { value = Value.Int 4; inclusive = true };
            hi = Some { value = Value.Int 9; inclusive = true } };
      residual = Ast.True } ->
      ()
  | p -> Alcotest.failf "tighten: %s" (Plan.to_string p));
  (* at equal values the exclusive bound is the tighter one *)
  match Plan.analyze schema (Ast.And (cmp "key" Ast.Ge 4, cmp "key" Ast.Gt 4)) with
  | { Plan.path =
        Plan.Range_scan
          { lo = Some { value = Value.Int 4; inclusive = false }; hi = None };
      residual = Ast.True } ->
      ()
  | p -> Alcotest.failf "exclusive wins: %s" (Plan.to_string p)

let test_analyze_residual_only () =
  (* atoms under Or/Not, Ne, and non-key atoms never steer the path *)
  List.iter
    (fun p ->
      match Plan.analyze schema p with
      | { Plan.path = Plan.Full_scan; residual } when residual = p -> ()
      | pl -> Alcotest.failf "expected full scan: %s" (Plan.to_string pl))
    [ Ast.Or (cmp "key" Ast.Eq 1, cmp "key" Ast.Eq 2);
      Ast.Not (cmp "key" Ast.Lt 3);
      cmp "key" Ast.Ne 7;
      cmp "num" Ast.Eq 3 ];
  match Plan.analyze schema Ast.True with
  | { Plan.path = Plan.Full_scan; residual = Ast.True } -> ()
  | p -> Alcotest.failf "true: %s" (Plan.to_string p)

let test_explain () =
  let schema_of n = if n = "R" then Some schema else None in
  let ex src =
    Plan.explain ~schema_of (Fdb_query.Parser.parse_exn src)
  in
  Alcotest.(check string) "point"
    "select R: point lookup key = 5; residual num > 2; project val"
    (ex "select val from R where key = 5 and num > 2");
  Alcotest.(check string) "range"
    "count R: range scan [key >= 3, key < 9]"
    (ex "count R where key >= 3 and key < 9");
  Alcotest.(check string) "full"
    "update R: full scan; residual num = 1" (ex "update R set val = \"x\" where num = 1");
  Alcotest.(check string) "size" "count R: size accessor" (ex "count R");
  Alcotest.(check string) "unknown" "select Zz: unknown relation"
    (ex "select * from Zz")

(* -- golden explain: the fdbsim rendering, pinned, then executed ---------- *)

let golden_schema =
  Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ]

(* One case per access path the planner can choose (the `fdbsim explain`
   schema: key:int, val:string).  The expected strings are the exact lines
   the CLI prints; a rewording is a user-visible change and must show up
   here. *)
let golden_cases =
  [ ("find 7 in R", "find R: point lookup key = 7");
    ( "select * from R where key = 7 and val = \"c\"",
      "select R: point lookup key = 7; residual val = \"c\"" );
    ( "select * from R where key >= 3 and key < 9",
      "select R: range scan [key >= 3, key < 9]" );
    ( "select val from R where val = \"c\"",
      "select R: full scan; residual val = \"c\"; project val" );
    ("count R", "count R: size accessor");
    ( "sum key from R where key <= 4",
      "aggregate R: range scan [-inf, key <= 4]" );
    ("delete 7 from R", "delete R: point delete key = 7");
    ( "update R set val = \"z\" where key > 10",
      "update R: range scan [key > 10, +inf]" ) ]

let test_explain_golden () =
  let schema_of n = if n = "R" then Some golden_schema else None in
  List.iter
    (fun (src, expected) ->
      Alcotest.(check string) src expected
        (Plan.explain ~schema_of (Fdb_query.Parser.parse_exn src)))
    golden_cases

(* The explained plans must execute on every persistent backend: each
   golden query runs against a fresh relation per backend, every backend
   must answer exactly as the linked list does, and the planner's path
   metrics must record the advertised mix (1 point, 3 range, 1 full among
   the planner-routed queries). *)
let test_explain_paths_on_backends () =
  let gtup k =
    Tuple.make
      [ Value.Int k; Value.Str (String.make 1 (Char.chr (97 + (k mod 5)))) ]
  in
  let mk backend =
    match
      Database.load
        (Database.create ~backend [ golden_schema ])
        ~rel:"R" (List.init 32 gtup)
    with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  let run db src = fst (Txn.translate (Fdb_query.Parser.parse_exn src) db) in
  let reference =
    let db = mk Relation.List_backend in
    List.map (fun (src, _) -> run db src) golden_cases
  in
  let m_point = Fdb_obs.Metrics.counter "plan.path.point"
  and m_range = Fdb_obs.Metrics.counter "plan.path.range"
  and m_full = Fdb_obs.Metrics.counter "plan.path.full" in
  List.iter
    (fun backend ->
      let name = Relation.backend_name backend in
      let db = mk backend in
      let p0 = Fdb_obs.Metrics.counter_value m_point
      and r0 = Fdb_obs.Metrics.counter_value m_range
      and f0 = Fdb_obs.Metrics.counter_value m_full in
      List.iteri
        (fun i (src, _) ->
          Alcotest.check response_t
            (Printf.sprintf "%s: %s" name src)
            (List.nth reference i) (run db src))
        golden_cases;
      Alcotest.(check (list int))
        (name ^ ": planner path mix")
        [ 1; 3; 1 ]
        [ Fdb_obs.Metrics.counter_value m_point - p0;
          Fdb_obs.Metrics.counter_value m_range - r0;
          Fdb_obs.Metrics.counter_value m_full - f0 ])
    backends

(* -- range folds on every backend ---------------------------------------- *)

let keys_of tuples = List.map (fun t -> Tuple.key t) tuples

let test_range_semantics () =
  List.iter
    (fun backend ->
      let name = Relation.backend_name backend in
      let r = mk_rel backend 64 in
      let range ?lo ?hi () = keys_of (Relation.range ?lo ?hi r) in
      Alcotest.(check (list int))
        (name ^ ": [10, 20)")
        (List.init 10 (fun i -> 10 + i))
        (List.map
           (function Value.Int k -> k | _ -> -1)
           (range ~lo:(Relation.Inclusive (Value.Int 10))
              ~hi:(Relation.Exclusive (Value.Int 20)) ()));
      Alcotest.(check int)
        (name ^ ": (5, 9]")
        4
        (List.length
           (range ~lo:(Relation.Exclusive (Value.Int 5))
              ~hi:(Relation.Inclusive (Value.Int 9)) ()));
      Alcotest.(check int) (name ^ ": unbounded") 64 (List.length (range ()));
      Alcotest.(check int)
        (name ^ ": empty range")
        0
        (List.length
           (range ~lo:(Relation.Inclusive (Value.Int 40))
              ~hi:(Relation.Exclusive (Value.Int 40)) ())))
    backends

let test_range_fold_prunes () =
  (* The meter charges only units actually visited: a narrow range near the
     front must touch far fewer units than the full fold on every backend
     (trees prune subtrees; the list stops at the upper bound). *)
  List.iter
    (fun backend ->
      let name = Relation.backend_name backend in
      let r = mk_rel backend 512 in
      let full = Meter.create () in
      let n_full = Relation.fold ~meter:full (fun acc _ -> acc + 1) 0 r in
      Alcotest.(check int) (name ^ ": full fold sees all") 512 n_full;
      let narrow = Meter.create () in
      let n_narrow =
        Relation.range_fold ~meter:narrow
          ~lo:(Relation.Inclusive (Value.Int 8))
          ~hi:(Relation.Inclusive (Value.Int 15))
          (fun acc _ -> acc + 1)
          0 r
      in
      Alcotest.(check int) (name ^ ": narrow range sees 8") 8 n_narrow;
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d visited << %d full" name
           (Meter.allocs narrow) (Meter.allocs full))
        true
        (Meter.allocs narrow * 4 < Meter.allocs full))
    backends

let test_update_single_traversal_shares () =
  List.iter
    (fun backend ->
      let name = Relation.backend_name backend in
      let r = mk_rel backend 512 in
      let meter = Meter.create () in
      let b = Some (Relation.Inclusive (Value.Int 300)) in
      let (r', changed) =
        Relation.update ~meter ?lo:b ?hi:b r (fun t ->
            if Value.equal (Tuple.key t) (Value.Int 300) then
              Some (Tuple.make [ Value.Int 300; Value.Int 99; Value.Str "z" ])
            else None)
      in
      Alcotest.(check int) (name ^ ": one row") 1 changed;
      Alcotest.(check int) (name ^ ": size kept") 512 (Relation.size r');
      (* trees rebuild only the spine path; the list must copy the prefix
         up to the touched key but never past the upper bound *)
      let rebuilt_cap =
        match backend with Relation.List_backend -> 302 | _ -> 512 / 4
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d units rebuilt (<= %d)" name
           (Meter.allocs meter) rebuilt_cap)
        true
        (Meter.allocs meter <= rebuilt_cap);
      let (shared, total) = Relation.shared_units ~old:r r' in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d/%d shared" name shared total)
        true
        (total - shared <= Meter.allocs meter);
      (* untouched relation returned physically unchanged *)
      let (r'', changed') = Relation.update r' (fun _ -> None) in
      Alcotest.(check int) (name ^ ": no-op count") 0 changed';
      Alcotest.(check bool) (name ^ ": no-op shares") true (r'' == r'))
    backends

(* -- planner vs naive (property, all four backends) ----------------------- *)

let gen_pred =
  QCheck2.Gen.(
    let gen_atom =
      let key_atom =
        map2
          (fun op v -> cmp "key" op v)
          (oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ])
          (int_range (-2) 40)
      and other_atom =
        oneof
          [ map2 (fun op v -> cmp "num" op v)
              (oneofl [ Ast.Eq; Ast.Lt; Ast.Ge ])
              (int_range 0 13);
            map
              (fun c -> Ast.Cmp ("val", Ast.Eq, Value.Str (String.make 1 c)))
              (char_range 'a' 'e');
            (* an unknown column exercises the Failed path on both sides *)
            return (Ast.Cmp ("ghost", Ast.Eq, Value.Int 0)) ]
      in
      (* key atoms dominate so point/range paths actually get chosen *)
      frequency [ (3, key_atom); (1, other_atom) ]
    in
    sized @@ fix (fun self n ->
        if n <= 1 then oneof [ return Ast.True; gen_atom ]
        else
          frequency
            [ (3, gen_atom);
              (3, map2 (fun a b -> Ast.And (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> Ast.Or (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map (fun a -> Ast.Not a) (self (n - 1))) ]))

let gen_case =
  QCheck2.Gen.(
    triple
      (list_size (int_range 0 40) (int_range 0 40))
      gen_pred (int_range 0 3))

(* The pre-planner executor semantics, computed from first principles. *)
let naive_query db query =
  let rel = match Ast.relations_touched query with r :: _ -> r | [] -> assert false in
  match Database.relation db rel with
  | None -> Txn.Failed (Printf.sprintf "unknown relation %s" rel)
  | Some r -> (
      let rows = Relation.to_list r in
      match query with
      | Ast.Select { cols; where; _ } -> (
          match Pred.compile schema where with
          | Error e -> Txn.Failed e
          | Ok test -> (
              let picked = List.filter test rows in
              match cols with
              | None -> Txn.Selected picked
              | Some cs -> (
                  match
                    List.map
                      (fun c -> Schema.column_index schema c)
                      cs
                  with
                  | idxs when List.for_all Option.is_some idxs ->
                      let idxs = List.map Option.get idxs in
                      Txn.Selected (Algebra.project idxs picked)
                  | _ -> Txn.Failed "bad column")))
      | Ast.Count { where; _ } -> (
          match Pred.compile schema where with
          | Error e -> Txn.Failed e
          | Ok test -> Txn.Counted (List.length (List.filter test rows)))
      | Ast.Aggregate { agg; col; where; _ } -> (
          match Pred.compile_aggregate schema agg col where with
          | Error e -> Txn.Failed e
          | Ok (step, finish) ->
              Txn.Aggregated (finish (List.fold_left step None rows)))
      | Ast.Update { col; value; where; _ } -> (
          match Pred.compile_update schema col value where with
          | Error e -> Txn.Failed e
          | Ok rewrite ->
              Txn.Updated
                (List.length (List.filter_map rewrite rows)))
      | _ -> assert false)

let naive_updated_rows db where value =
  match Database.relation db "R" with
  | None -> []
  | Some r -> (
      match Pred.compile_update schema "num" value where with
      | Error _ -> Relation.to_list r
      | Ok rewrite ->
          List.map
            (fun t -> match rewrite t with Some t' -> t' | None -> t)
            (Relation.to_list r))

let prop_planner_matches_naive =
  QCheck2.Test.make ~name:"planned executor == naive full scan (4 backends)"
    ~count:300 gen_case (fun (keys, where, kind) ->
      let tuples = List.map tup keys in
      List.for_all
        (fun backend ->
          let db =
            match
              Database.load (Database.create ~backend [ schema ]) ~rel:"R"
                tuples
            with
            | Ok db -> db
            | Error e -> QCheck2.Test.fail_report e
          in
          let query =
            match kind with
            | 0 -> Ast.Select { rel = "R"; cols = None; where }
            | 1 -> Ast.Select { rel = "R"; cols = Some [ "val"; "key" ]; where }
            | 2 -> Ast.Count { rel = "R"; where }
            | _ -> Ast.Aggregate { agg = Ast.Sum; rel = "R"; col = "num"; where }
          in
          let (resp, db') = Txn.translate query db in
          let expected = naive_query db query in
          if not (Txn.response_equal resp expected) then
            QCheck2.Test.fail_reportf
              "%s on %s: planned %s, naive %s (plan: %s)"
              (Ast.to_string query)
              (Relation.backend_name backend)
              (Format.asprintf "%a" Txn.pp_response resp)
              (Format.asprintf "%a" Txn.pp_response expected)
              (plan_str where)
          else if not (db' == db) then
            QCheck2.Test.fail_reportf "read query replaced the db"
          else true)
        backends)

let prop_update_matches_naive =
  QCheck2.Test.make ~name:"planned update == naive rewrite (4 backends)"
    ~count:300 gen_case (fun (keys, where, _) ->
      let tuples = List.map tup keys in
      let value = Value.Int 99 in
      List.for_all
        (fun backend ->
          let db =
            match
              Database.load (Database.create ~backend [ schema ]) ~rel:"R"
                tuples
            with
            | Ok db -> db
            | Error e -> QCheck2.Test.fail_report e
          in
          let query =
            Ast.Update { rel = "R"; col = "num"; value; where }
          in
          let (resp, db') = Txn.translate query db in
          let expected = naive_query db query in
          if not (Txn.response_equal resp expected) then
            QCheck2.Test.fail_reportf "update count: planned %s, naive %s"
              (Format.asprintf "%a" Txn.pp_response resp)
              (Format.asprintf "%a" Txn.pp_response expected)
          else
            let final =
              match Database.relation db' "R" with
              | Some r -> Relation.to_list r
              | None -> []
            in
            let expected_rows =
              match expected with
              | Txn.Failed _ -> final (* db untouched on failure *)
              | _ -> naive_updated_rows db where value
            in
            List.equal Tuple.equal final expected_rows
            || QCheck2.Test.fail_reportf "update contents diverge on %s"
                 (Relation.backend_name backend))
        backends)

(* -- algebra equivalences -------------------------------------------------- *)

let gen_pairs =
  QCheck2.Gen.(
    list_size (int_range 0 30)
      (map2
         (fun k s -> Tuple.make [ Value.Int k; Value.Str (String.make 1 s) ])
         (int_range 0 8) (char_range 'a' 'd')))

let prop_hash_join_matches_nested =
  QCheck2.Test.make ~name:"hash join == nested loop" ~count:500
    QCheck2.Gen.(pair gen_pairs gen_pairs)
    (fun (left, right) ->
      List.for_all2 Tuple.equal
        (Algebra.join ~algo:`Hash ~left_col:0 ~right_col:0 left right)
        (Algebra.join ~algo:`Nested ~left_col:0 ~right_col:0 left right)
      && List.equal Tuple.equal
           (Algebra.join ~algo:`Hash ~left_col:1 ~right_col:1 left right)
           (Algebra.join ~algo:`Nested ~left_col:1 ~right_col:1 left right))

let prop_sort_merge_set_ops =
  QCheck2.Test.make ~name:"sort-merge difference/intersection == List.exists"
    ~count:500
    QCheck2.Gen.(pair gen_pairs gen_pairs)
    (fun (a, b) ->
      let naive_diff =
        List.filter (fun t -> not (List.exists (Tuple.equal t) b)) a
      and naive_inter = List.filter (fun t -> List.exists (Tuple.equal t) b) a in
      List.equal Tuple.equal naive_diff (Algebra.difference a b)
      && List.equal Tuple.equal naive_inter (Algebra.intersection a b))

(* -- whole histories through the new executor ------------------------------ *)

let test_sim_still_serializable () =
  for seed = 0 to 9 do
    let sc = Gen.generate { Gen.default_spec with seed } in
    let outcome = Sim.run ~faults:Sim.default_faults ~seed sc in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d serializable" seed)
      true
      (Oracle.accepted outcome.Sim.verdict)
  done

let test_count_join_still_exact () =
  (* count with a predicate, and a join with duplicate-valued columns,
     through the reference executor *)
  let db =
    match
      Database.load (Database.create [ schema ]) ~rel:"R"
        (List.map tup [ 1; 2; 3; 4; 5 ])
    with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  let run src = fst (Txn.translate (Fdb_query.Parser.parse_exn src) db) in
  Alcotest.check response_t "count where" (Txn.Counted 3)
    (run "count R where key >= 3");
  Alcotest.check response_t "count residual" (Txn.Counted 1)
    (run "count R where key >= 3 and num = 2");
  Alcotest.check response_t "point count miss" (Txn.Counted 0)
    (run "count R where key = 77")

let () =
  Alcotest.run "plan"
    [
      ( "analyze",
        [
          Alcotest.test_case "point lookup" `Quick test_analyze_point;
          Alcotest.test_case "range tightening" `Quick
            test_analyze_range_tightens;
          Alcotest.test_case "residual-only forms" `Quick
            test_analyze_residual_only;
          Alcotest.test_case "explain strings" `Quick test_explain;
          Alcotest.test_case "golden explain lines" `Quick test_explain_golden;
          Alcotest.test_case "golden plans on 4 backends" `Quick
            test_explain_paths_on_backends;
        ] );
      ( "access-paths",
        [
          Alcotest.test_case "range semantics (4 backends)" `Quick
            test_range_semantics;
          Alcotest.test_case "range fold prunes (metered)" `Quick
            test_range_fold_prunes;
          Alcotest.test_case "update single traversal" `Quick
            test_update_single_traversal_shares;
          Alcotest.test_case "count/join exactness" `Quick
            test_count_join_still_exact;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_planner_matches_naive;
          QCheck_alcotest.to_alcotest prop_update_matches_naive;
          QCheck_alcotest.to_alcotest prop_hash_join_matches_nested;
          QCheck_alcotest.to_alcotest prop_sort_merge_set_ops;
        ] );
      ( "histories",
        [
          Alcotest.test_case "sim sweep serializable" `Quick
            test_sim_still_serializable;
        ] );
    ]
