(* Mini-FEL tests: lexing, parsing, evaluation, leniency, and the paper's
   own programs. *)

module Lexer = Fdb_fel.Lexer
module Parser = Fdb_fel.Parser
module Ast = Fdb_fel.Ast
module Eval = Fdb_fel.Eval
module Engine = Fdb_kernel.Engine

let run src =
  match Eval.run_string src with
  | Ok (result, stats) -> (result, stats)
  | Error e -> Alcotest.failf "FEL: %s" e

let run_err src =
  match Eval.run_string src with
  | Ok (r, _) -> Alcotest.failf "expected an error, got %s" r
  | Error e -> e

let result src = fst (run src)

(* -- lexer ------------------------------------------------------------------ *)

let test_lexer_hyphen_idents () =
  (match Lexer.tokens "apply-stream" with
  | [ Lexer.IDENT "apply-stream" ] -> ()
  | _ -> Alcotest.fail "hyphenated identifier");
  (match Lexer.tokens "x-1" with
  | [ Lexer.IDENT "x"; Lexer.OP "-"; Lexer.INT 1 ] -> ()
  | _ -> Alcotest.fail "x-1 is subtraction");
  match Lexer.tokens "x - y" with
  | [ Lexer.IDENT "x"; Lexer.OP "-"; Lexer.IDENT "y" ] -> ()
  | _ -> Alcotest.fail "spaced subtraction"

let test_lexer_comments_and_null () =
  match Lexer.tokens ";; comment\nnull?:s || f" with
  | [ Lexer.IDENT "null?"; Lexer.COLON; Lexer.IDENT "s"; Lexer.PARPAR;
      Lexer.IDENT "f" ] ->
      ()
  | _ -> Alcotest.fail "comment/null?/parpar"

(* -- parser ----------------------------------------------------------------- *)

let test_parser_precedence () =
  (match Parser.parse_expr "1 + 2 * 3" with
  | Ok (Ast.Binop ("+", Ast.Int_lit 1, Ast.Binop ("*", _, _))) -> ()
  | _ -> Alcotest.fail "arithmetic precedence");
  (match Parser.parse_expr "f:x + 1" with
  | Ok (Ast.Binop ("+", Ast.App _, Ast.Int_lit 1)) -> ()
  | _ -> Alcotest.fail "application binds tighter than +");
  (match Parser.parse_expr "1 ^ 2 ^ []" with
  | Ok (Ast.Seq (Ast.Int_lit 1, Ast.Seq (Ast.Int_lit 2, Ast.Nil_lit))) -> ()
  | _ -> Alcotest.fail "^ right associative");
  match Parser.parse_expr "f || s ^ t" with
  | Ok (Ast.Seq (Ast.Map _, _)) -> ()
  | _ -> Alcotest.fail "^ looser than ||"

let test_parser_equations () =
  match Parser.parse_program "f:[a, b] = a + b, x = f:[1, 2], RESULT x" with
  | Ok { Ast.equations = [ Ast.Def_fun ("f", Ast.Ptuple [ "a"; "b" ], _);
                           Ast.Def_val (Ast.Pvar "x", _) ];
         result = Ast.Var "x" } ->
      ()
  | Ok p -> Alcotest.failf "wrong parse: %s" (Format.asprintf "%a" Ast.pp_program p)
  | Error e -> Alcotest.fail e

let test_parser_destructuring () =
  match Parser.parse_program "[a, b] = [1, 2], RESULT a" with
  | Ok { Ast.equations = [ Ast.Def_val (Ast.Ptuple [ "a"; "b" ], _) ]; _ } -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e

let test_parser_errors () =
  List.iter
    (fun src ->
      match Parser.parse_program src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" src)
    [ ""; "RESULT"; "x = , RESULT 1"; "x = 1 RESULT"; "1 = 2, RESULT 1" ]

(* -- evaluation --------------------------------------------------------------- *)

let test_arith () =
  Alcotest.(check string) "arith" "11" (result "RESULT 1 + 2 * 5");
  Alcotest.(check string) "sub/div" "4" (result "RESULT (10 - 2) / 2");
  Alcotest.(check string) "cmp" "true" (result "RESULT 3 <= 3");
  Alcotest.(check string) "string concat" "\"ab\""
    (result {|RESULT "a" + "b"|})

let test_equations_and_functions () =
  Alcotest.(check string) "function" "9"
    (result "square:x = x * x, RESULT square:3");
  Alcotest.(check string) "tuple parameter" "7"
    (result "add:[a, b] = a + b, RESULT add:[3, 4]");
  Alcotest.(check string) "recursion" "120"
    (result "fact:n = if n = 0 then 1 else n * fact:(n - 1), RESULT fact:5")

let test_streams () =
  Alcotest.(check string) "literal list" "[1, 2, 3]" (result "RESULT [1, 2, 3]");
  Alcotest.(check string) "followed-by" "[1, 2]" (result "RESULT 1 ^ 2 ^ []");
  Alcotest.(check string) "first/rest" "2" (result "RESULT first:(rest:[1, 2])");
  Alcotest.(check string) "null?" "false" (result "RESULT null?:[1]");
  Alcotest.(check string) "nil equality" "true" (result "RESULT [] = []")

let test_apply_to_all () =
  Alcotest.(check string) "|| maps" "[2, 4, 6]"
    (result "double:x = 2 * x, RESULT double || [1, 2, 3]");
  Alcotest.(check string) "|| on empty" "[]"
    (result "double:x = 2 * x, RESULT double || []")

let test_destructuring_equation () =
  Alcotest.(check string) "pair split" "[2, 1]"
    (result "[a, b] = [1, 2], RESULT [b, a]")

let test_infinite_stream_is_lenient () =
  (* A cyclic stream is fine as long as only a prefix is demanded; take
     forces just what it needs. *)
  Alcotest.(check string) "take from infinite" "[7, 7, 7]"
    (result
       "take:[n, s] = if n = 0 then [] else first:s ^ take:[n - 1, rest:s], \
        ones = 7 ^ ones, RESULT take:[3, ones]")

let test_eager_recursive_producer_diverges () =
  (* Leniency is NOT laziness: constructors are non-strict, but evaluation
     is data-driven.  A cyclic cell (ones = 7 ^ ones) is fine because no
     producer task exists, but a recursive stream driven by apply-to-all
     (nats = 0 ^ (inc || nats)) spawns a task per cell forever.  The
     engine detects the divergence via the cycle budget. *)
  match
    Eval.run_string ~max_cycles:2_000
      "inc:x = x + 1, \
       take:[n, s] = if n = 0 then [] else first:s ^ take:[n - 1, rest:s], \
       nats = 0 ^ (inc || nats), RESULT take:[5, nats]"
  with
  | Error e ->
      Alcotest.(check bool) "reported as stalled" true
        (String.length e >= 7 && String.sub e 0 7 = "stalled")
  | Ok (r, _) -> Alcotest.failf "eager infinite producer terminated: %s" r

let test_paper_apply_stream () =
  (* The paper's top-level program (Figure 2-1 / §2.1), verbatim in
     structure: apply-stream over a circular stream of database versions,
     with insert and count transactions. *)
  let program =
    {|
      apply-stream:[ts, dbs] =
        if null?:ts then [[], []]
        else {
          [response, new-db] = (first:ts):(first:dbs),
          [more-responses, more-dbs] = apply-stream:[rest:ts, rest:dbs],
          RESULT [response ^ more-responses, new-db ^ more-dbs]
        },
      mk-insert:k = { txn:db = [k, k ^ db], RESULT txn },
      len:s = if null?:s then 0 else 1 + len:(rest:s),
      mk-count:ignored = { txn:db = [len:db, db], RESULT txn },
      transactions = [mk-insert:10, mk-count:0, mk-insert:20, mk-count:0],
      initial-database = [1, 2, 3],
      [responses, new-databases] = apply-stream:[transactions, old-databases],
      old-databases = initial-database ^ new-databases,
      RESULT responses
    |}
  in
  let (res, stats) = run program in
  Alcotest.(check string) "responses" "[10, 4, 20, 5]" res;
  Alcotest.(check int) "no orphans" 0 stats.Engine.orphans;
  Alcotest.(check bool) "concurrency extracted" true (stats.Engine.max_ply > 1)

let test_pipelined_counts_overlap () =
  (* Two counts of the same database flood; makespan must be well under
     2x the single-count makespan. *)
  let mk n =
    Printf.sprintf
      "len:s = if null?:s then 0 else 1 + len:(rest:s), db = [%s], RESULT %s"
      (String.concat ", " (List.init 30 string_of_int))
      (String.concat " + " (List.init n (fun _ -> "len:db")))
  in
  let (_, one) = run (mk 1) in
  let (_, four) = run (mk 4) in
  Alcotest.(check bool)
    (Printf.sprintf "4 scans in %d vs 1 in %d cycles" four.Engine.cycles
       one.Engine.cycles)
    true
    (four.Engine.cycles < 2 * one.Engine.cycles)

let test_runtime_errors () =
  let check_err src fragment =
    let msg = run_err src in
    Alcotest.(check bool)
      (Printf.sprintf "%s mentions %s (got: %s)" src fragment msg)
      true
      (let n = String.length fragment and m = String.length msg in
       let rec at i = i + n <= m && (String.sub msg i n = fragment || at (i + 1)) in
       at 0)
  in
  check_err "RESULT 1 / 0" "division";
  check_err "RESULT first:[]" "first of []";
  check_err "RESULT undefined-thing" "unbound";
  check_err "RESULT 1:[2]" "not applicable";
  check_err "RESULT [1] = [2]" "compare";
  check_err {|RESULT 1 + "a"|} "bad operands"

let test_unresolved_renders_bottom () =
  (* A self-dependent scalar cannot resolve; the run quiesces with an
     orphan and renders bottom. *)
  match Eval.run_string "x = x + 1, RESULT x" with
  | Ok (r, stats) ->
      Alcotest.(check string) "bottom" "_|_" r;
      Alcotest.(check bool) "orphans reported" true (stats.Engine.orphans > 0)
  | Error e -> Alcotest.fail e

(* -- the prelude --------------------------------------------------------------- *)

let test_prelude_functions () =
  Alcotest.(check string) "length" "4" (result "RESULT length:[5, 6, 7, 8]");
  Alcotest.(check string) "append" "[1, 2, 3, 4]"
    (result "RESULT append:[[1, 2], [3, 4]]");
  Alcotest.(check string) "take/drop" "[[1, 2], [3]]"
    (result "s = [1, 2, 3], RESULT [take:[2, s], drop:[2, s]]");
  Alcotest.(check string) "reverse" "[3, 2, 1]" (result "RESULT reverse:[1, 2, 3]");
  Alcotest.(check string) "member yes" "1" (result "RESULT member:[2, [1, 2]]");
  Alcotest.(check string) "member no" "0" (result "RESULT member:[9, [1, 2]]");
  Alcotest.(check string) "sum" "6" (result "RESULT sum:[1, 2, 3]");
  Alcotest.(check string) "nth" "30" (result "RESULT nth:[2, [10, 20, 30]]");
  Alcotest.(check string) "iota" "[0, 1, 2, 3]" (result "RESULT iota:4");
  Alcotest.(check string) "filter" "[2, 4]"
    (result "even:x = x - x / 2 * 2 = 0, RESULT filter:[even, [1, 2, 3, 4]]");
  Alcotest.(check string) "foldr" "10"
    (result "add:[a, b] = a + b, RESULT foldr:[add, 0, [1, 2, 3, 4]]")

let test_prelude_shadowing () =
  (* A program's own definition wins over the prelude's. *)
  Alcotest.(check string) "user sum shadows" "99"
    (result "sum:s = 99, RESULT sum:[1, 2, 3]")

let test_prelude_composes_with_apply_to_all () =
  Alcotest.(check string) "sum of mapped stream" "12"
    (result "double:x = 2 * x, RESULT sum:(double || iota:4)")

(* Both evaluation strategies agree on every terminating program: generate
   random total expressions and compare. *)
let gen_total_expr =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 1 then
          oneof
            [ map string_of_int (int_range 0 20);
              map
                (fun xs ->
                  "[" ^ String.concat ", " (List.map string_of_int xs) ^ "]")
                (list_size (int_range 1 4) (int_range 0 9)) ]
        else
          let sub = self (n / 2) in
          oneof
            [ map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) sub sub;
              map2 (fun a b -> Printf.sprintf "(%s - %s)" a b) sub sub;
              map3
                (fun a b c ->
                  Printf.sprintf "(if %s <= %s then %s else %s)" a b c a)
                sub sub sub;
              map
                (fun xs ->
                  "sum:["
                  ^ String.concat ", " (List.map string_of_int xs)
                  ^ "]")
                (list_size (int_range 1 4) (int_range 0 9));
              map
                (fun xs ->
                  "length:["
                  ^ String.concat ", " (List.map string_of_int xs)
                  ^ "]")
                (list_size (int_range 1 4) (int_range 0 9)) ]))

let prop_modes_agree =
  QCheck2.Test.make ~name:"lenient and demand modes agree" ~count:200
    gen_total_expr (fun src ->
      let program = "RESULT " ^ src in
      match
        (Eval.run_string program, Eval.run_string ~mode:Eval.Demand program)
      with
      | (Ok (a, _), Ok (b, _)) -> a = b
      | (Error a, Error b) ->
          (* ill-typed programs (e.g. list + int) must fail identically *)
          a = b
      | (Ok (r, _), Error e) | (Error e, Ok (r, _)) ->
          QCheck2.Test.fail_reportf "modes disagree on %s: %s vs %s" src r e)

(* -- demand-driven (lazy) mode -------------------------------------------------- *)

let result_demand src =
  match Eval.run_string ~mode:Eval.Demand src with
  | Ok (r, _) -> r
  | Error e -> Alcotest.failf "FEL (demand): %s" e

let test_demand_basic () =
  Alcotest.(check string) "arith" "11" (result_demand "RESULT 1 + 2 * 5");
  Alcotest.(check string) "function" "9"
    (result_demand "square:x = x * x, RESULT square:3");
  Alcotest.(check string) "prelude" "[1, 2, 3, 4]"
    (result_demand "RESULT append:[[1, 2], [3, 4]]");
  Alcotest.(check string) "destructuring" "[2, 1]"
    (result_demand "[a, b] = [1, 2], RESULT [b, a]")

let test_demand_infinite_stream_terminates () =
  (* The program that (correctly) diverges under lenient evaluation:
     demand-driven production makes it finite. *)
  Alcotest.(check string) "nats" "[0, 1, 2, 3, 4]"
    (result_demand
       "inc:x = x + 1, nats = 0 ^ (inc || nats), RESULT take:[5, nats]")

let test_demand_skips_unused_equations () =
  (* An equation whose value would diverge is never demanded. *)
  Alcotest.(check string) "unused divergence" "42"
    (result_demand "boom:x = boom:x, trap = boom:1, RESULT 42")

let test_demand_vs_lenient_parallelism () =
  (* The cost of laziness: the same 3-scan program extracts less
     parallelism under demand-driven evaluation (scans run only as the
     printing demand reaches them), more under lenient ("anticipatory")
     evaluation. *)
  let src =
    "db = iota:40, RESULT [sum:db, length:db, sum:(reverse:db)]"
  in
  let stats mode =
    match Eval.run_string ~mode src with
    | Ok (_, stats) -> stats
    | Error e -> Alcotest.fail e
  in
  let lenient = stats Eval.Lenient and demand = stats Eval.Demand in
  Alcotest.(check bool)
    (Printf.sprintf "lenient wider plies (%d vs %d)"
       lenient.Engine.max_ply demand.Engine.max_ply)
    true
    (lenient.Engine.max_ply >= demand.Engine.max_ply);
  Alcotest.(check bool) "lenient not slower" true
    (lenient.Engine.cycles <= demand.Engine.cycles)

let test_demand_paper_apply_stream () =
  (* The paper's program also works demand-driven. *)
  let program =
    {|
      apply-stream:[ts, dbs] =
        if null?:ts then [[], []]
        else {
          [response, new-db] = (first:ts):(first:dbs),
          [more-responses, more-dbs] = apply-stream:[rest:ts, rest:dbs],
          RESULT [response ^ more-responses, new-db ^ more-dbs]
        },
      mk-insert:k = { txn:db = [k, k ^ db], RESULT txn },
      mk-count:ignored = { txn:db = [length:db, db], RESULT txn },
      transactions = [mk-insert:10, mk-count:0, mk-insert:20, mk-count:0],
      initial-database = [1, 2, 3],
      [responses, new-databases] = apply-stream:[transactions, old-databases],
      old-databases = initial-database ^ new-databases,
      RESULT responses
    |}
  in
  Alcotest.(check string) "responses" "[10, 4, 20, 5]" (result_demand program)

(* -- site pragmas (paper section 3.2) ---------------------------------------- *)

let test_my_site_ideal () =
  (* On the ideal machine everything runs on site 0. *)
  Alcotest.(check string) "my-site" "0" (result "RESULT my-site:[]")

let run_on_machine src =
  let topo = Fdb_net.Topology.hypercube 3 in
  let machine = Fdb_rediflow.Machine.create
      (Fdb_rediflow.Machine.default_config topo) in
  let eng = Engine.create
      ~scheduler:(Fdb_rediflow.Machine.scheduler machine) () in
  let program = Parser.parse_program_exn src in
  let out = Eval.eval_program eng program in
  let stats = Engine.run eng in
  (Eval.render out, stats)

let test_result_on_places_computation () =
  (* RESULT-ON:[expr, site]: the outermost function is computed on the
     requested site, observable via my-site. *)
  let (res, _) = run_on_machine "RESULT result-on:[my-site:[], 5]" in
  Alcotest.(check string) "computed on site 5" "5" res

let test_result_on_returns_value () =
  let (res, _) =
    run_on_machine
      "f:x = x * x, RESULT result-on:[f:7, 3] + result-on:[f:2, 6]"
  in
  Alcotest.(check string) "value unaffected by placement" "53" res

let test_result_on_bad_site_type () =
  match Eval.run_string {|RESULT result-on:[1, "here"]|} with
  | Error e ->
      Alcotest.(check bool) "type error reported" true
        (String.length e > 0)
  | Ok (r, _) -> Alcotest.failf "accepted string site: %s" r

let () =
  Alcotest.run "fel"
    [
      ( "lexer",
        [
          Alcotest.test_case "hyphen idents" `Quick test_lexer_hyphen_idents;
          Alcotest.test_case "comments/null?" `Quick
            test_lexer_comments_and_null;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "equations" `Quick test_parser_equations;
          Alcotest.test_case "destructuring" `Quick test_parser_destructuring;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "equations/functions" `Quick
            test_equations_and_functions;
          Alcotest.test_case "streams" `Quick test_streams;
          Alcotest.test_case "apply-to-all" `Quick test_apply_to_all;
          Alcotest.test_case "destructuring" `Quick
            test_destructuring_equation;
          Alcotest.test_case "infinite streams" `Quick
            test_infinite_stream_is_lenient;
          Alcotest.test_case "eager recursion diverges" `Quick
            test_eager_recursive_producer_diverges;
          Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
          Alcotest.test_case "bottom" `Quick test_unresolved_renders_bottom;
        ] );
      ( "prelude",
        [
          Alcotest.test_case "functions" `Quick test_prelude_functions;
          Alcotest.test_case "shadowing" `Quick test_prelude_shadowing;
          Alcotest.test_case "with ||" `Quick
            test_prelude_composes_with_apply_to_all;
        ] );
      ( "demand mode",
        [
          Alcotest.test_case "basics" `Quick test_demand_basic;
          Alcotest.test_case "infinite stream" `Quick
            test_demand_infinite_stream_terminates;
          Alcotest.test_case "unused divergence skipped" `Quick
            test_demand_skips_unused_equations;
          Alcotest.test_case "parallelism trade-off" `Quick
            test_demand_vs_lenient_parallelism;
          Alcotest.test_case "paper apply-stream" `Quick
            test_demand_paper_apply_stream;
          QCheck_alcotest.to_alcotest prop_modes_agree;
        ] );
      ( "site pragmas",
        [
          Alcotest.test_case "my-site (ideal)" `Quick test_my_site_ideal;
          Alcotest.test_case "result-on places" `Quick
            test_result_on_places_computation;
          Alcotest.test_case "result-on value" `Quick
            test_result_on_returns_value;
          Alcotest.test_case "result-on bad site" `Quick
            test_result_on_bad_site_type;
        ] );
      ( "paper programs",
        [
          Alcotest.test_case "apply-stream" `Quick test_paper_apply_stream;
          Alcotest.test_case "scans overlap" `Quick
            test_pipelined_counts_overlap;
        ] );
    ]
