exception Double_put of string
exception Stalled of string

type task = {
  tid : int;
  label : string;
  mutable home : int;
  work : unit -> unit;
}

type scheduler = {
  sched_name : string;
  sched_enqueue : task -> src:int -> unit;
  sched_next_batch : unit -> task list;
  sched_advance : unit -> unit;
  sched_pending : unit -> bool;
}

type t = {
  mutable next_tid : int;
  mutable executed : int;
  mutable cycle : int;
  mutable current : int;  (* site of the running task; -1 at setup *)
  mutable waiting : int;  (* continuations registered but not yet woken *)
  mutable sched : scheduler;
  mutable started : bool;
  plies : Vec.t;
  trace_on : bool;
  mutable trace_rev : (int * string) list;
}

(* The ideal scheduler: everything ready runs in the next cycle.  Two
   queues, swapped each cycle, so tasks enabled while a cycle executes run
   in the following one. *)
let ideal_scheduler () =
  let now = Queue.create () and next = Queue.create () in
  {
    sched_name = "ideal";
    sched_enqueue = (fun task ~src:_ -> Queue.push task next);
    sched_next_batch =
      (fun () ->
        let batch = List.of_seq (Queue.to_seq now) in
        Queue.clear now;
        batch);
    sched_advance = (fun () -> Queue.transfer next now);
    sched_pending = (fun () -> not (Queue.is_empty now && Queue.is_empty next));
  }

let create ?(trace = false) ?scheduler () =
  let sched =
    match scheduler with Some s -> s | None -> ideal_scheduler ()
  in
  {
    next_tid = 0;
    executed = 0;
    cycle = 0;
    current = -1;
    waiting = 0;
    sched;
    started = false;
    plies = Vec.create ();
    trace_on = trace;
    trace_rev = [];
  }

let set_scheduler eng sched =
  if eng.started then invalid_arg "Engine.set_scheduler: engine already ran";
  eng.sched <- sched

let current_site eng = eng.current
let now eng = eng.cycle
let tasks_executed eng = eng.executed

let enqueue eng ?(label = "") ~site work =
  let task = { tid = eng.next_tid; label; home = site; work } in
  eng.next_tid <- eng.next_tid + 1;
  eng.sched.sched_enqueue task ~src:eng.current

let spawn eng ?label ?site work =
  let site = match site with Some s -> s | None -> max eng.current 0 in
  enqueue eng ?label ~site work

(* Single-assignment cells, Rediflow-style: a cell lives at the site of the
   task that created it, and a continuation on a cell becomes a task AT THE
   CELL'S SITE ("access by one processor of another processor's memory ...
   becomes a task for the receiving processor", paper §3.4).  The scheduler
   charges the transfer: the demand message when the value already exists,
   the data delivery when the put arrives later. *)
type 'a state =
  | Empty of 'a waiter list
  | Full of 'a

and 'a waiter = { wlabel : string; wk : 'a -> unit }

type 'a ivar = {
  eng : t;
  home : int;
  mutable state : 'a state;
  (* Demand-driven production: a suspended computation expected to
     (eventually) put this cell, launched by the first await.  [None] for
     ordinary data-driven cells. *)
  mutable producer : (string * (unit -> unit)) option;
  (* Trace identity, assigned lazily on first traced access so untraced
     runs never pay for it.  Process-global, so one trace can span several
     engines without id collisions. *)
  mutable cid : int;
}

(* Atomic so engines running in different domains (e.g. differential runs
   under the parallel executor's tests) never mint colliding cell ids. *)
let cid_counter = Atomic.make 0

let cell_id iv =
  if iv.cid = 0 then iv.cid <- Atomic.fetch_and_add cid_counter 1 + 1;
  iv.cid

let ivar eng =
  { eng; home = max eng.current 0; state = Empty []; producer = None; cid = 0 }

let ivar_at eng ~site =
  { eng; home = site; state = Empty []; producer = None; cid = 0 }

let full eng v =
  { eng; home = max eng.current 0; state = Full v; producer = None; cid = 0 }

let full_at eng ~site v =
  { eng; home = site; state = Full v; producer = None; cid = 0 }

let suspend eng ?(label = "demand") work =
  let iv = ivar eng in
  iv.producer <- Some (label, work);
  iv

(* Launch a cell's suspended producer (at most once). *)
let demand iv =
  match iv.producer with
  | None -> ()
  | Some (label, work) ->
      iv.producer <- None;
      let eng = iv.eng in
      let task = { tid = eng.next_tid; label; home = iv.home; work } in
      eng.next_tid <- eng.next_tid + 1;
      eng.sched.sched_enqueue task ~src:eng.current

let home iv = iv.home

let wake iv ~src w v =
  let eng = iv.eng in
  eng.waiting <- eng.waiting - 1;
  let task =
    { tid = eng.next_tid; label = w.wlabel; home = iv.home;
      work = (fun () -> w.wk v) }
  in
  eng.next_tid <- eng.next_tid + 1;
  eng.sched.sched_enqueue task ~src

let put iv v =
  match iv.state with
  | Full _ -> raise (Double_put "Engine.put: cell already full")
  | Empty waiters ->
      iv.state <- Full v;
      (* Guarded so the disabled path allocates nothing (bench-asserted). *)
      if Fdb_obs.Trace.enabled () then
        Fdb_obs.Trace.emit_at ~ts:iv.eng.cycle ~site:iv.home
          (Fdb_obs.Event.Cell_write { cell = cell_id iv });
      (* The data travels from the putting site to the cell's home, then
         each waiting continuation fires there.  Waiters were pushed in
         front; wake in registration order. *)
      let src = iv.eng.current in
      List.iter (fun w -> wake iv ~src w v) (List.rev waiters)

let await ?(label = "") iv k =
  let eng = iv.eng in
  if Fdb_obs.Trace.enabled () then
    Fdb_obs.Trace.emit_at ~ts:eng.cycle ~site:eng.current
      (Fdb_obs.Event.Cell_read { cell = cell_id iv; label });
  eng.waiting <- eng.waiting + 1;
  match iv.state with
  | Full v ->
      (* The demand travels from the awaiting site to the data. *)
      wake iv ~src:eng.current { wlabel = label; wk = k } v
  | Empty waiters ->
      iv.state <- Empty ({ wlabel = label; wk = k } :: waiters);
      demand iv

let peek iv = match iv.state with Full v -> Some v | Empty _ -> None
let is_full iv = match iv.state with Full _ -> true | Empty _ -> false

type run_stats = {
  cycles : int;
  tasks : int;
  max_ply : int;
  avg_ply : float;
  busy_cycles : int;
  orphans : int;
  trace : (int * string) list;
}

let exec eng (task : task) =
  eng.current <- task.home;
  eng.executed <- eng.executed + 1;
  if eng.trace_on && task.label <> "" then
    eng.trace_rev <- (eng.cycle, task.label) :: eng.trace_rev;
  task.work ();
  eng.current <- -1

let run ?(max_cycles = 20_000_000) eng =
  eng.started <- true;
  let sched = eng.sched in
  sched.sched_advance ();
  (* promote setup-time tasks into the first cycle *)
  while sched.sched_pending () do
    if eng.cycle >= max_cycles then
      raise (Stalled (Printf.sprintf "no quiescence after %d cycles" max_cycles));
    let batch = sched.sched_next_batch () in
    Vec.push eng.plies (List.length batch);
    List.iter (exec eng) batch;
    eng.cycle <- eng.cycle + 1;
    sched.sched_advance ()
  done;
  let cycles = eng.cycle in
  let busy = Vec.fold (fun a p -> if p > 0 then a + 1 else a) 0 eng.plies in
  {
    cycles;
    tasks = eng.executed;
    max_ply = Vec.max_value eng.plies;
    avg_ply =
      (if cycles = 0 then 0.0
       else float_of_int eng.executed /. float_of_int cycles);
    busy_cycles = busy;
    orphans = eng.waiting;
    trace = List.rev eng.trace_rev;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>cycles=%d tasks=%d max_ply=%d avg_ply=%.2f busy=%d orphans=%d@]"
    s.cycles s.tasks s.max_ply s.avg_ply s.busy_cycles s.orphans
