lib/fel/ast.mli: Format
