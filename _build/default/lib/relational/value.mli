(** Atomic data items stored in tuples. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Real of float

val compare : t -> t -> int
(** Total order: within a constructor the natural order; across
    constructors, by constructor (Int < Str < Bool < Real). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val type_name : t -> string
