examples/quickstart.ml: Database Fdb_query Fdb_relational Fdb_txn Format List Schema
