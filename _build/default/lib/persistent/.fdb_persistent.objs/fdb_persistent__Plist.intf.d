lib/persistent/plist.mli: Meter Ordered
