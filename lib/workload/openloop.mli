(** Open-loop production traffic generation.

    Where {!Workload} regenerates the paper's 50-transaction experiment,
    this module generates the traffic the ROADMAP's production north-star
    needs: million-tuple initial relations, multi-tenant merged streams,
    and a schedule of {e phases} that each impose their own read/write mix
    — including hot-key storm phases that slam most references into a tiny
    set of recent keys.  Generation is open-loop (the stream exists before
    any executor runs, arrival order fixed at generation time),
    deterministic in the seed, and O(n log n) in the stream length thanks
    to {!Keyset}. *)

open Fdb_relational

type mix = {
  insert_pct : float;
  delete_pct : float;
  update_pct : float;
  join_pct : float;
  miss_ratio : float;  (** fraction of finds probing an absent key *)
  skew : float;  (** rank-skew toward recent keys, as {!Workload.spec} *)
}

type storm = {
  hot_keys : int;  (** the hot set: this many of the most recent keys *)
  hot_pct : float;  (** percentage of key references aimed at the hot set *)
}

type phase = {
  name : string;
  txns : int;
  mix : mix;
  storm : storm option;
}

type spec = {
  relations : int;
  initial_tuples : int;  (** spread round-robin over the relations *)
  tenants : int;  (** streams merged into the arrival order *)
  seed : int;
  phases : phase list;  (** executed in order — the mix schedule *)
}

type t = {
  spec : spec;
  schemas : Schema.t list;
  initial : (string * Tuple.t list) list;  (** per-relation bulk load *)
  stream : (int * Fdb_query.Ast.query) array;
      (** (tenant, query) in merged arrival order *)
  phase_bounds : (string * int * int) list;
      (** per phase: name and the [[start, stop)] offsets into [stream] *)
}

val read_mix : mix
(** 100% finds, 5% miss ratio, no skew — the base to override. *)

val check : spec -> unit
(** @raise Invalid_argument on a malformed spec (negative counts, mixes
    over 100%, storm parameters out of range). *)

val generate : spec -> t
(** Deterministic in [spec] (including the seed); scales to million-tuple
    initial relations in seconds. *)

val total_txns : t -> int

val tagged : t -> (int * Fdb_query.Ast.query) list
(** The merged stream as the tagged list every [Pipeline] execution mode
    consumes; tags are tenant ids. *)

val tenant_stream : t -> int -> Fdb_query.Ast.query list
(** One tenant's substream, in arrival order. *)

val standard :
  ?relations:int ->
  ?initial_tuples:int ->
  ?tenants:int ->
  ?txns:int ->
  ?seed:int ->
  unit ->
  spec
(** The canonical three-phase production sweep: [steady] (read-heavy,
    mild skew), [hot-storm] (90% of references into the 64 newest keys),
    [write-burst] (40/20/20 insert/delete/update).  Defaults: 1 relation,
    1M initial tuples, 4 tenants, 30k transactions, seed 42. *)
