type t = Value.t array

let make vs =
  if vs = [] then invalid_arg "Tuple.make: empty tuple";
  Array.of_list vs

let key t =
  if Array.length t = 0 then invalid_arg "Tuple.key: empty tuple";
  t.(0)

let arity = Array.length

let get t i = t.(i)

let set t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let compare a b =
  let na = Array.length a and nb = Array.length b in
  let rec go i =
    if i >= na && i >= nb then 0
    else if i >= na then -1
    else if i >= nb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let compare_key a b = Value.compare (key a) (key b)

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Value.pp)
    t

let to_string t = Format.asprintf "%a" pp t
