lib/fel/ast.ml: Format
