module Make (Elt : Ordered.S) = struct
  type cell = Nil | Cons of Elt.t * cell

  type t = cell

  let empty = Nil

  let rec of_sorted = function [] -> Nil | x :: r -> Cons (x, of_sorted r)

  let of_list xs = of_sorted (List.sort Elt.compare xs)

  let to_list t =
    let rec go acc = function
      | Nil -> List.rev acc
      | Cons (x, r) -> go (x :: acc) r
    in
    go [] t

  let size t =
    let rec go n = function Nil -> n | Cons (_, r) -> go (n + 1) r in
    go 0 t

  let is_empty t = t = Nil

  let rec member x = function
    | Nil -> false
    | Cons (y, r) ->
        let c = Elt.compare x y in
        if c = 0 then true else if c < 0 then false else member x r

  let rec find p = function
    | Nil -> None
    | Cons (y, r) -> if p y then Some y else find p r

  let fold ?meter f acc t =
    let rec go acc = function
      | Nil -> acc
      | Cons (x, r) ->
          Meter.alloc meter 1;
          go (f acc x) r
    in
    go acc t

  let iter f t =
    let rec go = function
      | Nil -> ()
      | Cons (x, r) ->
          f x;
          go r
    in
    go t

  let range_fold ?meter ~ge_lo ~le_hi f acc t =
    (* A list has no index: the prefix below the lower bound must still be
       walked (and is metered), but the scan stops at the first element past
       the upper bound, so a tight range near the front is cheap. *)
    let rec go acc = function
      | Nil -> acc
      | Cons (x, r) ->
          Meter.alloc meter 1;
          if not (ge_lo x) then go acc r
          else if le_hi x then go (f acc x) r
          else acc
    in
    go acc t

  let rewrite ?meter ~ge_lo ~le_hi f t =
    let count = ref 0 in
    let rec go = function
      | Nil -> Nil
      | Cons (x, r) as whole ->
          if not (le_hi x) then whole
          else
            let x' =
              if ge_lo x then
                match f x with
                | None -> x
                | Some y ->
                    if Elt.compare y x <> 0 then
                      invalid_arg "Plist.rewrite: replacement reorders element";
                    incr count;
                    y
              else x
            in
            let r' = go r in
            if x' == x && r' == r then whole
            else begin
              Meter.alloc meter 1;
              Cons (x', r')
            end
    in
    let t' = go t in
    (t', !count)

  let insert ?meter x t =
    let rec go = function
      | Nil ->
          Meter.alloc meter 1;
          Cons (x, Nil)
      | Cons (y, r) as whole ->
          if Elt.compare x y <= 0 then begin
            Meter.alloc meter 1;
            Cons (x, whole)
          end
          else begin
            Meter.alloc meter 1;
            Cons (y, go r)
          end
    in
    go t

  let delete ?meter x t =
    let rec go = function
      | Nil -> (Nil, false)
      | Cons (y, r) ->
          let c = Elt.compare x y in
          if c = 0 then (r, true)
          else if c < 0 then (Cons (y, r), false)
          else begin
            let (r', found) = go r in
            if found then begin
              Meter.alloc meter 1;
              (Cons (y, r'), true)
            end
            else (Cons (y, r), false)
          end
    in
    go t

  let shared_cells ~old t =
    (* Walk the new spine and test physical membership of each Cons cell in
       the old spine ([Nil] is an immediate value, not a cell).  Suffix
       sharing means that once a shared cell is found the rest is shared
       too, but we verify cell by cell to keep the measurement
       assumption-free. *)
    let rec mem_phys cell = function
      | Nil -> false
      | Cons (_, r) as c -> cell == c || mem_phys cell r
    in
    let rec go shared total = function
      | Nil -> (shared, total)
      | Cons (_, r) as c ->
          let shared = if mem_phys c old then shared + 1 else shared in
          go shared (total + 1) r
    in
    go 0 0 t

  let invariant t =
    let rec go = function
      | Nil | Cons (_, Nil) -> true
      | Cons (x, (Cons (y, _) as r)) -> Elt.compare x y <= 0 && go r
    in
    go t
end
