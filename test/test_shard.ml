(* The sharded executor (lib/shard): relation placement, the two-level
   merge with the commutativity-aware spine bypass, and the flagship
   cross-shard differential battery — the sharded run's responses and
   final state are identical to the ideal sequential engine's, survive
   the adversarial epoch reordering, and are accepted by the
   serializability oracle, across shard counts, cross-shard ratios,
   merge policies and seeds. *)

open Fdb
open Fdb_relational
module Shard = Fdb_shard.Shard
module Footprint = Fdb_repair.Footprint
module Txn = Fdb_txn.Txn
module Merge = Fdb_merge.Merge
module Ast = Fdb_query.Ast
module Sim = Fdb_check.Sim
module Cgen = Fdb_check.Gen
module Oracle = Fdb_check.Oracle
module Trace_oracle = Fdb_check.Trace_oracle
module Event = Fdb_obs.Event

let tup k s = Tuple.make [ Value.Int k; Value.Str s ]

let schemas =
  [ Schema.make ~name:"R" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ];
    Schema.make ~name:"S" ~cols:[ ("key", Schema.CInt); ("val", Schema.CStr) ] ]

let q = Fdb_query.Parser.parse_exn

let random_db rand =
  let load db name n =
    List.fold_left
      (fun db t ->
        match Database.insert db ~rel:name t with
        | Ok (db, _) -> db
        | Error _ -> db)
      db
      (List.init n (fun i ->
           tup (Random.State.int rand 16) (Printf.sprintf "%s%d" name i)))
  in
  let db = Database.create schemas in
  let db = load db "R" (3 + Random.State.int rand 20) in
  load db "S" (Random.State.int rand 12)

let random_query rand i =
  let rel () = [| "R"; "S"; "Z" |].(Random.State.int rand 3) in
  let key () = Random.State.int rand 16 in
  q
    (match Random.State.int rand 10 with
    | 0 -> Printf.sprintf "insert (%d, \"v%d\") into %s" (key ()) i (rel ())
    | 1 -> Printf.sprintf "find %d in %s" (key ()) (rel ())
    | 2 -> Printf.sprintf "delete %d from %s" (key ()) (rel ())
    | 3 -> Printf.sprintf "select * from %s where key >= %d" (rel ()) (key ())
    | 4 -> Printf.sprintf "count %s" (rel ())
    | 5 -> Printf.sprintf "sum key from %s where key <= %d" (rel ()) (key ())
    | 6 -> Printf.sprintf "min key from %s" (rel ())
    | 7 ->
        Printf.sprintf "update %s set val = \"u%d\" where key = %d" (rel ()) i
          (key ())
    | 8 -> Printf.sprintf "max val from %s" (rel ())
    | _ -> "join R and S on key = key")

(* -- placement -------------------------------------------------------------- *)

let test_shard_of () =
  Alcotest.(check int) "single shard takes everything" 0
    (Shard.shard_of ~shards:1 "R17");
  (* deterministic, and in range for a spread of names *)
  for shards = 1 to 8 do
    for i = 0 to 40 do
      let name = Printf.sprintf "R%d" i in
      let s = Shard.shard_of ~shards name in
      Alcotest.(check bool) "in range" true (s >= 0 && s < shards);
      Alcotest.(check int) "stable" s (Shard.shard_of ~shards name)
    done
  done;
  (* the hash actually spreads: 41 names over 4 shards leave none empty *)
  let hit = Array.make 4 false in
  for i = 0 to 40 do
    hit.(Shard.shard_of ~shards:4 (Printf.sprintf "R%d" i)) <- true
  done;
  Alcotest.(check bool) "no empty shard over 41 names" true
    (Array.for_all Fun.id hit);
  Alcotest.check_raises "shards must be positive"
    (Invalid_argument "Shard.shard_of: shards < 1") (fun () ->
      ignore (Shard.shard_of ~shards:0 "R"))

let test_shards_of_query () =
  let shards = 4 in
  let s rel = Shard.shard_of ~shards rel in
  Alcotest.(check (list int)) "find is single-shard" [ s "R" ]
    (Shard.shards_of_query ~shards (q "find 1 in R"));
  let join = Shard.shards_of_query ~shards (q "join R and S on key = key") in
  Alcotest.(check (list int))
    "join touches both owners" (List.sort_uniq Int.compare [ s "R"; s "S" ])
    join;
  Alcotest.(check (list int)) "self-join is single-shard" [ s "R" ]
    (Shard.shards_of_query ~shards (q "join R and R on key = key"))

let test_slice_partitions () =
  let rand = Random.State.make [| 11 |] in
  let db = random_db rand in
  let slices = Shard.slice ~shards:3 db in
  (* every relation lands in exactly its owner's slice *)
  List.iter
    (fun rel ->
      Array.iteri
        (fun s slice ->
          let here = Database.relation slice rel <> None in
          Alcotest.(check bool)
            (Printf.sprintf "%s in slice %d" rel s)
            (Shard.shard_of ~shards:3 rel = s)
            here;
          if here then
            Alcotest.(check bool) (rel ^ " slot shared") true
              (Option.get (Database.relation slice rel)
              == Option.get (Database.relation db rel)))
        slices)
    (Database.names db)

(* -- the flagship battery: sharded == ideal == oracle ------------------------ *)

let policies =
  [ ("arrival", Merge.Arrival_order);
    ("bursty", Merge.Eager_clients [ 2; 3 ]);
    ("seeded", Merge.Seeded 23);
    ("concat", Merge.Concatenated) ]

let shard_counts = [ 1; 2; 4; 8 ]
let cross_ratios = [ 0.0; 0.1; 0.5; 1.0 ]

let scenario ~seed =
  Cgen.generate
    {
      Cgen.default_spec with
      Cgen.clients = 3;
      relations = 4;
      queries_per_client = 5;
      seed;
    }

(* 128 scenarios: {1,2,4,8} shards x {0, .1, .5, 1} cross-shard ratios x
   4 merge policies x 2 seeds.  Each runs the full Sim battery:
   trace lawfulness (incl. shard_serializability), sequential
   differential, adversarial epoch-reorder replay, oracle acceptance —
   and byte-identity with the unsharded pipeline at shards = 1. *)
let test_battery () =
  let ran = ref 0 in
  List.iter
    (fun shards ->
      List.iter
        (fun ratio ->
          List.iter
            (fun (pname, policy) ->
              for seed = 0 to 1 do
                let sc =
                  Sim.cross_shardify ~ratio ~seed (scenario ~seed)
                in
                let o = Sim.run_sharded ~policy ~shards ~seed sc in
                incr ran;
                if not (Oracle.accepted o.Sim.shard_verdict) then
                  Alcotest.failf "shards %d ratio %.1f %s seed %d: rejected"
                    shards ratio pname seed;
                let st = o.Sim.shard_stats in
                if st.Shard.txns <> Cgen.query_count sc then
                  Alcotest.failf
                    "shards %d ratio %.1f %s seed %d: %d txns, %d queries"
                    shards ratio pname seed st.Shard.txns
                    (Cgen.query_count sc);
                Alcotest.(check int)
                  "local + bypassed + spine = txns" st.Shard.txns
                  (st.Shard.local + st.Shard.bypassed + st.Shard.spine);
                (* every commit lives on some shard-local stream *)
                Alcotest.(check bool) "streams cover the commits" true
                  (Array.fold_left ( + ) 0 o.Sim.shard_streams >= st.Shard.txns);
                if shards = 1 then
                  Alcotest.(check int) "one shard: nothing is cross-shard" 0
                    (st.Shard.bypassed + st.Shard.spine)
              done)
            policies)
        cross_ratios)
    shard_counts;
  Alcotest.(check int) "battery size" 128 !ran

(* At ratio 0 the rewritten workload has no cross-shard work at all, so
   the spine must stay empty whatever the shard count; at ratio 1 every
   slot is a cross-relation join, so on 2+ shards the bypass must
   actually fire (joins read, never write — they all commute). *)
let test_battery_edges () =
  List.iter
    (fun shards ->
      for seed = 0 to 2 do
        let sc0 = Sim.cross_shardify ~ratio:0.0 ~seed (scenario ~seed) in
        let o0 = Sim.run_sharded ~shards ~seed sc0 in
        Alcotest.(check int) "ratio 0: no spine candidates" 0
          (o0.Sim.shard_stats.Shard.bypassed + o0.Sim.shard_stats.Shard.spine);
        let sc1 = Sim.cross_shardify ~ratio:1.0 ~seed (scenario ~seed) in
        let o1 = Sim.run_sharded ~shards ~seed sc1 in
        if shards > 1 then
          Alcotest.(check bool) "ratio 1: the bypass fires" true
            (o1.Sim.shard_stats.Shard.bypassed > 0)
      done)
    [ 2; 4; 8 ]

let test_replica_composition () =
  (* each shard's commit stream drives its own primary/backup pair; the
     surviving replica state must equal the slice (asserted inside
     Sim.run_sharded ~replicate:true) *)
  List.iter
    (fun shards ->
      List.iter
        (fun ratio ->
          for seed = 0 to 1 do
            let sc = Sim.cross_shardify ~ratio ~seed (scenario ~seed) in
            let o = Sim.run_sharded ~replicate:true ~shards ~seed sc in
            Alcotest.(check bool)
              (Printf.sprintf "shards %d ratio %.1f seed %d" shards ratio seed)
              true
              (Oracle.accepted o.Sim.shard_verdict)
          done)
        [ 0.0; 0.5 ])
    [ 1; 2; 4 ]

let test_sim_metrics_scoped () =
  let sc = Sim.cross_shardify ~ratio:0.5 ~seed:3 (scenario ~seed:3) in
  let run () = Sim.run_sharded ~shards:4 ~seed:3 sc in
  let a = run () in
  ignore (Sim.run_sharded ~shards:2 ~seed:7 sc);
  let b = run () in
  Alcotest.(check bool) "identical runs report identical metrics" true
    (a.Sim.shard_metrics = b.Sim.shard_metrics);
  Alcotest.(check bool) "shard counters recorded" true
    (List.exists
       (fun (name, v) ->
         String.length name >= 6 && String.sub name 0 6 = "shard." && v > 0)
       a.Sim.shard_metrics.Fdb_obs.Metrics.counters)

(* -- shard-count-1 is the unsharded pipeline, byte for byte ------------------ *)

let test_one_shard_is_the_pipeline () =
  for seed = 0 to 9 do
    let rand = Random.State.make [| seed; 0x51d |] in
    let spec =
      {
        Pipeline.schemas;
        initial =
          [ ("R", List.init (5 + Random.State.int rand 20)
                    (fun i -> tup (Random.State.int rand 16)
                                (Printf.sprintf "R%d" i)));
            ("S", List.init (Random.State.int rand 12)
                    (fun i -> tup (Random.State.int rand 16)
                                (Printf.sprintf "S%d" i))) ];
      }
    in
    let tagged =
      List.init (8 + (seed mod 12)) (fun i -> (i mod 3, random_query rand i))
    in
    let sh = Pipeline.run_sharded ~shards:1 spec tagged in
    let reference =
      Pipeline.reference ~semantics:Pipeline.Ordered_unique spec tagged
    in
    let ideal = Pipeline.run ~semantics:Pipeline.Ordered_unique spec tagged in
    let render resps final =
      Format.asprintf "%a|%a"
        (Format.pp_print_list (fun ppf (t, r) ->
             Format.fprintf ppf "%d:%a" t Pipeline.pp_response r))
        resps
        (Format.pp_print_list (fun ppf (rel, ts) ->
             Format.fprintf ppf "%s=%a" rel
               (Format.pp_print_list Tuple.pp)
               ts))
        final
    in
    Alcotest.(check string)
      (Printf.sprintf "seed %d: byte-identical to the unsharded pipeline" seed)
      (render reference ideal.Pipeline.final_db)
      (render sh.Pipeline.sh_responses sh.Pipeline.sh_final_db);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: all commits local" seed)
      sh.Pipeline.sh_stats.Shard.txns sh.Pipeline.sh_stats.Shard.local
  done

let test_pipeline_sharded_differential () =
  (* the pipeline mode agrees with the sequential reference at every
     shard count, not just 1 *)
  List.iter
    (fun shards ->
      for seed = 0 to 4 do
        let rand = Random.State.make [| seed; 0x52d |] in
        let spec =
          { Pipeline.schemas;
            initial = [ ("R", List.init 10 (fun i -> tup i "r"));
                        ("S", List.init 6 (fun i -> tup (i * 2) "s")) ] }
        in
        let tagged =
          List.init 14 (fun i -> (i mod 3, random_query rand i))
        in
        let sh = Pipeline.run_sharded ~shards spec tagged in
        let reference =
          Pipeline.reference ~semantics:Pipeline.Ordered_unique spec tagged
        in
        List.iteri
          (fun i ((t1, r1), (t2, r2)) ->
            if t1 <> t2 || not (Pipeline.response_equal r1 r2) then
              Alcotest.failf "shards %d seed %d: response %d diverges" shards
                seed i)
          (List.combine sh.Pipeline.sh_responses reference);
        Alcotest.(check bool)
          (Printf.sprintf "shards %d seed %d: versions bounded" shards seed)
          true
          (sh.Pipeline.sh_versions >= 1
          && sh.Pipeline.sh_versions <= List.length tagged + 1)
      done)
    [ 1; 2; 4; 8 ]

(* -- QCheck: the bypass analysis is sound ------------------------------------ *)

let seed_gen = QCheck2.Gen.int_range 0 100_000

let footprint_of db query =
  let c = Footprint.collector () in
  let (resp, db') = Txn.translate_tracked (Footprint.tracker c) query db in
  (resp, db', Footprint.captured c)

(* Any pair the analysis would bypass must produce the same responses and
   the same final database applied in either order, on random databases.
   (test_repair.ml checks one direction of [Footprint.commutes]; this is
   the full two-sided claim the sharded bypass rests on.) *)
let prop_pair_commutes_sound =
  QCheck2.Test.make ~name:"bypassed pairs commute in both orders" ~count:500
    seed_gen (fun seed ->
      let rand = Random.State.make [| seed; 0x5c1 |] in
      let db = random_db rand in
      let a = random_query rand seed in
      let b = random_query rand (seed + 1) in
      let (_, _, fp_a) = footprint_of db a in
      let (_, _, fp_b) = footprint_of db b in
      let schema_of = Database.schema_of db in
      if not (Shard.pair_commutes ~schema_of (fp_a, a) (fp_b, b)) then true
      else
        let (ra1, db_a) = Txn.translate a db in
        let (rb1, db_ab) = Txn.translate b db_a in
        let (rb2, db_b) = Txn.translate b db in
        let (ra2, db_ba) = Txn.translate a db_b in
        Txn.response_equal ra1 ra2
        && Txn.response_equal rb1 rb2
        && Oracle.db_equal db_ab db_ba)

(* Guard against the property passing vacuously. *)
let test_pair_commutes_not_vacuous () =
  let fired = ref 0 in
  for seed = 0 to 299 do
    let rand = Random.State.make [| seed; 0x5c1 |] in
    let db = random_db rand in
    let a = random_query rand seed in
    let b = random_query rand (seed + 1) in
    let (_, _, fp_a) = footprint_of db a in
    let (_, _, fp_b) = footprint_of db b in
    if Shard.pair_commutes ~schema_of:(Database.schema_of db) (fp_a, a)
         (fp_b, b)
    then incr fired
  done;
  Alcotest.(check bool)
    (Printf.sprintf "bypass fired on %d of 300 generated pairs" !fired)
    true (!fired > 20)

(* -- shard_serializability trace invariant ----------------------------------- *)

let ev kind = { Event.ts = 0; site = -1; kind }

let test_shard_law_accepts_lawful () =
  let lawful =
    [
      ev (Event.Shard_commit { shard = 0; txn = 0; pos = 0 });
      ev (Event.Shard_commit { shard = 1; txn = 1; pos = 0 });
      ev (Event.Shard_bypass { txn = 2; shards = 2 });
      ev (Event.Shard_commit { shard = 0; txn = 2; pos = 1 });
      ev (Event.Shard_commit { shard = 1; txn = 2; pos = 1 });
      ev (Event.Shard_conflict { txn = 3; against = 2 });
      ev (Event.Shard_spine { txn = 3; gsn = 0 });
      ev (Event.Shard_commit { shard = 0; txn = 3; pos = 2 });
      ev (Event.Shard_commit { shard = 1; txn = 3; pos = 2 });
      ev (Event.Shard_spine { txn = 4; gsn = 1 });
    ]
  in
  Alcotest.(check int) "lawful trace has no violations" 0
    (List.length (Trace_oracle.shard_serializability lawful))

let violates expected events =
  let vs = Trace_oracle.shard_serializability (List.map ev events) in
  if vs = [] then Alcotest.failf "expected a violation (%s), got none" expected;
  List.iter
    (fun (v : Trace_oracle.violation) ->
      Alcotest.(check string) "invariant name" "shard_serializability"
        v.Trace_oracle.invariant)
    vs

let test_shard_law_rejects () =
  violates "gap in a shard-local stream"
    [
      Event.Shard_commit { shard = 0; txn = 0; pos = 0 };
      Event.Shard_commit { shard = 0; txn = 1; pos = 2 };
    ];
  violates "reordered shard-local stream"
    [
      Event.Shard_commit { shard = 0; txn = 0; pos = 1 };
      Event.Shard_commit { shard = 0; txn = 1; pos = 0 };
    ];
  violates "spine out of global-merge order"
    [
      Event.Shard_spine { txn = 0; gsn = 1 };
      Event.Shard_spine { txn = 1; gsn = 0 };
    ];
  violates "falsely bypassed conflicting pair"
    [
      Event.Shard_conflict { txn = 2; against = 1 };
      Event.Shard_bypass { txn = 2; shards = 2 };
    ];
  violates "conflict reported after the bypass"
    [
      Event.Shard_bypass { txn = 2; shards = 2 };
      Event.Shard_conflict { txn = 2; against = 1 };
    ];
  violates "spine after bypass"
    [
      Event.Shard_bypass { txn = 2; shards = 2 };
      Event.Shard_spine { txn = 2; gsn = 0 };
    ]

let test_live_trace_is_lawful () =
  (* a real sharded run with forced conflicts, traced: the law holds on
     live data and the trace contains actual spine and bypass activity *)
  let db =
    match
      Database.load (Database.create schemas) ~rel:"R"
        [ tup 1 "a"; tup 2 "b" ]
    with
    | Ok db -> db
    | Error e -> Alcotest.fail e
  in
  let streams =
    [
      [ q "insert (5, \"x\") into R"; q "join R and S on key = key";
        q "insert (0, \"y\") into S" ];
      [ q "insert (7, \"z\") into S"; q "join R and S on key = key";
        q "find 1 in R" ];
    ]
  in
  let (r, trace) =
    Fdb_obs.Trace.record (fun () ->
        Shard.run ~shards:2 ~initial:db streams)
  in
  Alcotest.(check int) "no violations" 0
    (List.length (Trace_oracle.check trace));
  Alcotest.(check bool) "cross-shard work happened" true
    (r.Shard.stats.Shard.bypassed + r.Shard.stats.Shard.spine > 0);
  let has k =
    List.exists (fun (e : Event.t) -> Event.name e.Event.kind = k) trace
  in
  Alcotest.(check bool) "shard_commit present" true (has "shard_commit")

let () =
  Alcotest.run "shard"
    [
      ( "placement",
        [
          Alcotest.test_case "shard_of" `Quick test_shard_of;
          Alcotest.test_case "shards_of_query" `Quick test_shards_of_query;
          Alcotest.test_case "slice partitions the database" `Quick
            test_slice_partitions;
        ] );
      ( "battery",
        [
          Alcotest.test_case "128 scenarios: sharded == ideal == oracle" `Slow
            test_battery;
          Alcotest.test_case "ratio edges: empty spine / firing bypass" `Slow
            test_battery_edges;
          Alcotest.test_case "per-shard replication composes" `Slow
            test_replica_composition;
          Alcotest.test_case "metrics scoped per run" `Quick
            test_sim_metrics_scoped;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "one shard == unsharded pipeline, byte for byte"
            `Quick test_one_shard_is_the_pipeline;
          Alcotest.test_case "run_sharded == reference at every shard count"
            `Quick test_pipeline_sharded_differential;
        ] );
      ( "commutativity",
        [
          QCheck_alcotest.to_alcotest prop_pair_commutes_sound;
          Alcotest.test_case "bypass is not vacuous" `Quick
            test_pair_commutes_not_vacuous;
        ] );
      ( "trace",
        [
          Alcotest.test_case "shard_serializability accepts lawful" `Quick
            test_shard_law_accepts_lawful;
          Alcotest.test_case "shard_serializability rejects violations" `Quick
            test_shard_law_rejects;
          Alcotest.test_case "live sharded run is lawful" `Quick
            test_live_trace_is_lawful;
        ] );
    ]
