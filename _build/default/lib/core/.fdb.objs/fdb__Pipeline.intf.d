lib/core/pipeline.mli: Engine Fdb_kernel Fdb_query Fdb_rediflow Fdb_relational Fdb_workload Format Machine Schema Tuple Value
