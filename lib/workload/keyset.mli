(** Indexable present-key set, ranked newest-first.

    The dense replacement for the generator's per-relation key lists:
    rank 0 is the most recently prepended key, the highest rank the oldest
    survivor, exactly the order of the legacy
    [key :: rest] / [List.nth] / [List.filter] representation — but
    selection and removal by rank are O(log n) (Fenwick tree over an
    append-order array), so million-key workloads generate in seconds. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty set.  [capacity] pre-sizes the backing array (it grows by
    doubling regardless). *)

val of_list : int list -> t
(** From a newest-first key list (the legacy [present] representation). *)

val size : t -> int
(** Keys currently present. *)

val prepend : t -> int -> unit
(** Add a key at rank 0 (the "most recent" end). *)

val get : t -> int -> int
(** [get t rank] is the key at newest-first [rank].
    @raise Invalid_argument unless [0 <= rank < size t]. *)

val remove : t -> int -> int
(** Remove and return the key at newest-first [rank]; the ranks of the
    remaining keys keep their relative order.
    @raise Invalid_argument unless [0 <= rank < size t]. *)

val to_list : t -> int list
(** Newest-first, the legacy order. *)
