module Make (Elt : Ordered.S) = struct
  type t =
    | Leaf
    | N2 of t * Elt.t * t
    | N3 of t * Elt.t * t * Elt.t * t

  let empty = Leaf

  let rec member x = function
    | Leaf -> false
    | N2 (l, a, r) ->
        let c = Elt.compare x a in
        if c = 0 then true else if c < 0 then member x l else member x r
    | N3 (l, a, m, b, r) ->
        let ca = Elt.compare x a in
        if ca = 0 then true
        else if ca < 0 then member x l
        else
          let cb = Elt.compare x b in
          if cb = 0 then true else if cb < 0 then member x m else member x r

  let rec find x = function
    | Leaf -> None
    | N2 (l, a, r) ->
        let c = Elt.compare x a in
        if c = 0 then Some a else if c < 0 then find x l else find x r
    | N3 (l, a, m, b, r) ->
        let ca = Elt.compare x a in
        if ca = 0 then Some a
        else if ca < 0 then find x l
        else
          let cb = Elt.compare x b in
          if cb = 0 then Some b else if cb < 0 then find x m else find x r

  (* -- insertion ---------------------------------------------------------- *)

  type grow = Done of t | Up of t * Elt.t * t

  let n2 ?meter l a r =
    Meter.alloc meter 1;
    N2 (l, a, r)

  let n3 ?meter l a m b r =
    Meter.alloc meter 1;
    N3 (l, a, m, b, r)

  let insert ?meter x t =
    let rec ins = function
      | Leaf -> Up (Leaf, x, Leaf)
      | N2 (l, a, r) as whole ->
          let c = Elt.compare x a in
          if c = 0 then Done whole
          else if c < 0 then begin
            match ins l with
            | Done l' -> if l' == l then Done whole else Done (n2 ?meter l' a r)
            | Up (t1, m, t2) -> Done (n3 ?meter t1 m t2 a r)
          end
          else begin
            match ins r with
            | Done r' -> if r' == r then Done whole else Done (n2 ?meter l a r')
            | Up (t1, m, t2) -> Done (n3 ?meter l a t1 m t2)
          end
      | N3 (l, a, m, b, r) as whole ->
          let ca = Elt.compare x a in
          if ca = 0 then Done whole
          else if ca < 0 then begin
            match ins l with
            | Done l' ->
                if l' == l then Done whole else Done (n3 ?meter l' a m b r)
            | Up (t1, mm, t2) ->
                Up (n2 ?meter t1 mm t2, a, n2 ?meter m b r)
          end
          else
            let cb = Elt.compare x b in
            if cb = 0 then Done whole
            else if cb < 0 then begin
              match ins m with
              | Done m' ->
                  if m' == m then Done whole else Done (n3 ?meter l a m' b r)
              | Up (t1, mm, t2) ->
                  Up (n2 ?meter l a t1, mm, n2 ?meter t2 b r)
            end
            else begin
              match ins r with
              | Done r' ->
                  if r' == r then Done whole else Done (n3 ?meter l a m b r')
              | Up (t1, mm, t2) ->
                  Up (n2 ?meter l a m, b, n2 ?meter t1 mm t2)
            end
    in
    match ins t with Done t' -> t' | Up (l, a, r) -> n2 ?meter l a r

  (* -- deletion ----------------------------------------------------------- *)

  (* [Short u] marks a subtree one level shorter than its siblings; the
     fix_* helpers restore uniform depth by rotation (sibling is an N3) or
     merging (sibling is an N2). *)
  type shrink = Ok2 of t | Short of t

  let fix2l ?meter l' a r =
    match l' with
    | Ok2 l -> Ok2 (n2 ?meter l a r)
    | Short l -> (
        match r with
        | N3 (rl, b, rm, c, rr) ->
            Ok2 (n2 ?meter (n2 ?meter l a rl) b (n2 ?meter rm c rr))
        | N2 (rl, b, rr) -> Short (n3 ?meter l a rl b rr)
        | Leaf -> assert false)

  let fix2r ?meter l a r' =
    match r' with
    | Ok2 r -> Ok2 (n2 ?meter l a r)
    | Short r -> (
        match l with
        | N3 (l1, b, l2, c, l3) ->
            Ok2 (n2 ?meter (n2 ?meter l1 b l2) c (n2 ?meter l3 a r))
        | N2 (l1, b, l2) -> Short (n3 ?meter l1 b l2 a r)
        | Leaf -> assert false)

  let fix3l ?meter l' a m b r =
    match l' with
    | Ok2 l -> Ok2 (n3 ?meter l a m b r)
    | Short l -> (
        match m with
        | N3 (m1, c, m2, d, m3) ->
            Ok2 (n3 ?meter (n2 ?meter l a m1) c (n2 ?meter m2 d m3) b r)
        | N2 (m1, c, m2) -> Ok2 (n2 ?meter (n3 ?meter l a m1 c m2) b r)
        | Leaf -> assert false)

  let fix3m ?meter l a m' b r =
    match m' with
    | Ok2 m -> Ok2 (n3 ?meter l a m b r)
    | Short m -> (
        match l with
        | N3 (l1, c, l2, d, l3) ->
            Ok2 (n3 ?meter (n2 ?meter l1 c l2) d (n2 ?meter l3 a m) b r)
        | N2 (l1, c, l2) -> Ok2 (n2 ?meter (n3 ?meter l1 c l2 a m) b r)
        | Leaf -> assert false)

  let fix3r ?meter l a m b r' =
    match r' with
    | Ok2 r -> Ok2 (n3 ?meter l a m b r)
    | Short r -> (
        match m with
        | N3 (m1, c, m2, d, m3) ->
            Ok2 (n3 ?meter l a (n2 ?meter m1 c m2) d (n2 ?meter m3 b r))
        | N2 (m1, c, m2) -> Ok2 (n2 ?meter l a (n3 ?meter m1 c m2 b r))
        | Leaf -> assert false)

  let rec take_min ?meter = function
    | Leaf -> assert false
    | N2 (Leaf, a, Leaf) -> (a, Short Leaf)
    | N3 (Leaf, a, Leaf, b, Leaf) -> (a, Ok2 (n2 ?meter Leaf b Leaf))
    | N2 (l, a, r) ->
        let (mn, l') = take_min ?meter l in
        (mn, fix2l ?meter l' a r)
    | N3 (l, a, m, b, r) ->
        let (mn, l') = take_min ?meter l in
        (mn, fix3l ?meter l' a m b r)

  let delete ?meter x t =
    let rec del = function
      | Leaf -> raise Not_found
      | N2 (Leaf, a, Leaf) ->
          if Elt.compare x a = 0 then Short Leaf else raise Not_found
      | N3 (Leaf, a, Leaf, b, Leaf) ->
          if Elt.compare x a = 0 then Ok2 (n2 ?meter Leaf b Leaf)
          else if Elt.compare x b = 0 then Ok2 (n2 ?meter Leaf a Leaf)
          else raise Not_found
      | N2 (l, a, r) ->
          let c = Elt.compare x a in
          if c = 0 then begin
            let (s, r') = take_min ?meter r in
            fix2r ?meter l s r'
          end
          else if c < 0 then fix2l ?meter (del l) a r
          else fix2r ?meter l a (del r)
      | N3 (l, a, m, b, r) ->
          let ca = Elt.compare x a in
          if ca = 0 then begin
            let (s, m') = take_min ?meter m in
            fix3m ?meter l s m' b r
          end
          else if ca < 0 then fix3l ?meter (del l) a m b r
          else
            let cb = Elt.compare x b in
            if cb = 0 then begin
              let (s, r') = take_min ?meter r in
              fix3r ?meter l a m s r'
            end
            else if cb < 0 then fix3m ?meter l a (del m) b r
            else fix3r ?meter l a m b (del r)
    in
    match del t with
    | Ok2 t' | Short t' -> (t', true)
    | exception Not_found -> (t, false)

  (* -- traversal, measurement, checking ----------------------------------- *)

  let insert_unmetered x t = insert x t

  let of_list xs = List.fold_left (fun t x -> insert_unmetered x t) empty xs

  let fold ?meter f acc t =
    let rec go acc = function
      | Leaf -> acc
      | N2 (l, a, r) ->
          Meter.alloc meter 1;
          go (f (go acc l) a) r
      | N3 (l, a, m, b, r) ->
          Meter.alloc meter 1;
          go (f (go (f (go acc l) a) m) b) r
    in
    go acc t

  let iter f t =
    let rec go = function
      | Leaf -> ()
      | N2 (l, a, r) ->
          go l;
          f a;
          go r
      | N3 (l, a, m, b, r) ->
          go l;
          f a;
          go m;
          f b;
          go r
    in
    go t

  let range_fold ?meter ~ge_lo ~le_hi f acc t =
    (* Prune subtrees provably outside the bounds: the middle child of an N3
       holds elements strictly between [a] and [b], so it is entered only
       when [a] can still be below the upper bound and [b] above the lower
       one. *)
    let rec go acc = function
      | Leaf -> acc
      | N2 (l, a, r) ->
          Meter.alloc meter 1;
          let acc = if ge_lo a then go acc l else acc in
          let acc = if ge_lo a && le_hi a then f acc a else acc in
          if le_hi a then go acc r else acc
      | N3 (l, a, m, b, r) ->
          Meter.alloc meter 1;
          let acc = if ge_lo a then go acc l else acc in
          let acc = if ge_lo a && le_hi a then f acc a else acc in
          let acc = if le_hi a && ge_lo b then go acc m else acc in
          let acc = if ge_lo b && le_hi b then f acc b else acc in
          if le_hi b then go acc r else acc
    in
    go acc t

  let rewrite ?meter ~ge_lo ~le_hi f t =
    let count = ref 0 in
    let patch x =
      if ge_lo x && le_hi x then
        match f x with
        | None -> x
        | Some y ->
            if Elt.compare y x <> 0 then
              invalid_arg "Two3.rewrite: replacement reorders element";
            incr count;
            y
      else x
    in
    let rec go = function
      | Leaf -> Leaf
      | N2 (l, a, r) as whole ->
          let l' = if ge_lo a then go l else l in
          let a' = patch a in
          let r' = if le_hi a then go r else r in
          if l' == l && a' == a && r' == r then whole
          else begin
            Meter.alloc meter 1;
            N2 (l', a', r')
          end
      | N3 (l, a, m, b, r) as whole ->
          let l' = if ge_lo a then go l else l in
          let a' = patch a in
          let m' = if le_hi a && ge_lo b then go m else m in
          let b' = patch b in
          let r' = if le_hi b then go r else r in
          if l' == l && a' == a && m' == m && b' == b && r' == r then whole
          else begin
            Meter.alloc meter 1;
            N3 (l', a', m', b', r')
          end
    in
    let t' = go t in
    (t', !count)

  let to_list t =
    let rec go acc = function
      | Leaf -> acc
      | N2 (l, a, r) -> go (a :: go acc r) l
      | N3 (l, a, m, b, r) -> go (a :: go (b :: go acc r) m) l
    in
    go [] t

  let rec size = function
    | Leaf -> 0
    | N2 (l, _, r) -> 1 + size l + size r
    | N3 (l, _, m, _, r) -> 2 + size l + size m + size r

  let rec height = function
    | Leaf -> 0
    | N2 (l, _, _) | N3 (l, _, _, _, _) -> 1 + height l

  (* Count internal nodes (the reconstructible units). *)
  let rec node_count = function
    | Leaf -> 0
    | N2 (l, _, r) -> 1 + node_count l + node_count r
    | N3 (l, _, m, _, r) -> 1 + node_count l + node_count m + node_count r

  let shared_nodes ~old t =
    let module H = Hashtbl.Make (struct
      type nonrec t = t

      let equal = ( == )
      let hash = Hashtbl.hash
    end) in
    let seen = H.create 64 in
    let rec remember = function
      | Leaf -> ()
      | N2 (l, _, r) as n ->
          if not (H.mem seen n) then begin
            H.add seen n ();
            remember l;
            remember r
          end
      | N3 (l, _, m, _, r) as n ->
          if not (H.mem seen n) then begin
            H.add seen n ();
            remember l;
            remember m;
            remember r
          end
    in
    remember old;
    let rec go (shared, total) = function
      | Leaf -> (shared, total)
      | n when H.mem seen n ->
          let k = node_count n in
          (shared + k, total + k)
      | N2 (l, _, r) -> go (go (shared, total + 1) l) r
      | N3 (l, _, m, _, r) -> go (go (go (shared, total + 1) l) m) r
    in
    go (0, 0) t

  exception Broken

  let invariant t =
    (* Returns (depth, bounds); raises when depths disagree or keys are out
       of order. *)
    let ordered lo x hi =
      (match lo with Some v when Elt.compare v x >= 0 -> raise Broken | _ -> ());
      match hi with Some v when Elt.compare x v >= 0 -> raise Broken | _ -> ()
    in
    let rec check lo hi = function
      | Leaf -> 0
      | N2 (l, a, r) ->
          ordered lo a hi;
          let dl = check lo (Some a) l and dr = check (Some a) hi r in
          if dl <> dr then raise Broken;
          dl + 1
      | N3 (l, a, m, b, r) ->
          ordered lo a hi;
          ordered lo b hi;
          if Elt.compare a b >= 0 then raise Broken;
          let dl = check lo (Some a) l in
          let dm = check (Some a) (Some b) m in
          let dr = check (Some b) hi r in
          if dl <> dm || dm <> dr then raise Broken;
          dl + 1
    in
    match check None None t with _ -> true | exception Broken -> false
end
