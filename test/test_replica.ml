(* Primary/backup replication: snapshot codec, failover, exactly-once. *)

module Gen = Fdb_check.Gen
module Oracle = Fdb_check.Oracle
module Sim = Fdb_check.Sim
module History = Fdb_txn.History
module Replica = Fdb_replica.Replica
module Snapshot = Fdb_replica.Snapshot

(* -- snapshot codec --------------------------------------------------------- *)

let build_history ?(seed = 3) ?(qpc = 8) () =
  let sc =
    Gen.generate { Gen.default_spec with Gen.seed; queries_per_client = qpc }
  in
  List.fold_left
    (fun h q -> fst (History.commit_query h q))
    (History.create (Gen.initial_db sc))
    (List.concat sc.Gen.streams)

let test_snapshot_roundtrip () =
  let h = build_history () in
  let h' = Snapshot.decode (Snapshot.encode h) in
  Alcotest.(check int) "same length" (History.length h) (History.length h');
  for i = 0 to History.length h - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "version %d equal" i)
      true
      (Oracle.db_equal (History.version h i) (History.version h' i))
  done

let test_snapshot_naive_roundtrip () =
  let h = build_history ~seed:5 () in
  let h' = Snapshot.decode (Snapshot.encode_naive h) in
  Alcotest.(check bool) "newest version equal" true
    (Oracle.db_equal (History.latest h) (History.latest h'))

let test_snapshot_delta_exploits_sharing () =
  let h = build_history ~qpc:12 () in
  let delta = String.length (Snapshot.encode h) in
  let naive = String.length (Snapshot.encode_naive h) in
  Alcotest.(check bool)
    (Printf.sprintf "delta (%d) < naive (%d)" delta naive)
    true (delta < naive);
  (* both decode to the same archive *)
  Alcotest.(check bool) "agree" true
    (Oracle.db_equal
       (History.latest (Snapshot.decode (Snapshot.encode h)))
       (History.latest (Snapshot.decode (Snapshot.encode_naive h))))

let test_snapshot_rejects_corruption () =
  let s = Snapshot.encode (build_history ()) in
  let truncated = String.sub s 0 (String.length s - 7) in
  let corrupted = "XYZSNAP" ^ s in
  let bitflip =
    let b = Bytes.of_string s in
    let mid = String.length s / 2 in
    Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x10));
    Bytes.to_string b
  in
  (* Trailing garbage after a complete, valid frame must be rejected too —
     decode consumes exactly the frame it reports. *)
  let trailing = s ^ "junk" in
  List.iter
    (fun (label, bad) ->
      match Snapshot.decode bad with
      | _ -> Alcotest.fail ("decode accepted a corrupt snapshot: " ^ label)
      | exception Fdb_wire.Wire.Corrupt { offset; reason } ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: offset %d in bounds (%s)" label offset reason)
            true
            (offset >= 0 && offset <= String.length bad))
    [
      ("truncated", truncated);
      ("bad prefix", corrupted);
      ("empty", "");
      ("bitflip", bitflip);
      ("trailing garbage", trailing);
    ]

let test_snapshot_trailing_offset () =
  (* The typed exception points exactly at the first trailing byte. *)
  let s = Snapshot.encode (build_history ()) in
  match Snapshot.decode (s ^ "!") with
  | _ -> Alcotest.fail "accepted trailing garbage"
  | exception Fdb_wire.Wire.Corrupt { offset; _ } ->
      Alcotest.(check int) "offset = frame end" (String.length s) offset

(* -- failover runs ---------------------------------------------------------- *)

let scenario seed = Gen.generate { Gen.default_spec with Gen.seed }

let run_replica ?(config = Replica.default_config) seed =
  let sc = scenario seed in
  let initial = Gen.initial_db sc in
  let r =
    Replica.run
      ~config:{ config with Replica.seed }
      ~initial sc.Gen.streams
  in
  (sc, initial, r)

let assert_invariants (r : Replica.report) =
  Alcotest.(check (list (pair int int)))
    "no acked commit lost" [] r.Replica.acked_lost;
  Alcotest.(check int) "no commit doubly applied" 0 r.Replica.dup_applied;
  Alcotest.(check int) "no replay divergence" 0 r.Replica.replay_mismatches;
  if r.Replica.crashed then
    Alcotest.(check int) "replay = log suffix past last checkpoint"
      r.Replica.log_suffix_at_crash r.Replica.replayed

let assert_serializable sc initial (r : Replica.report) =
  let obs =
    { Oracle.responses = r.Replica.responses; final = r.Replica.final }
  in
  Alcotest.(check bool) "serializable" true
    (Oracle.accepted (Oracle.check ~initial ~streams:sc.Gen.streams obs))

let test_no_crash () =
  let (sc, initial, r) = run_replica 5 in
  Alcotest.(check bool) "did not crash" false r.Replica.crashed;
  Alcotest.(check int) "every query committed at the primary"
    (Gen.query_count sc) r.Replica.committed_primary;
  Alcotest.(check bool) "checkpoints flowed" true
    (r.Replica.checkpoints_installed > 0);
  assert_invariants r;
  assert_serializable sc initial r

let crash_config crash =
  { Replica.default_config with Replica.crash }

let test_mid_stream_crash () =
  let (sc, initial, r) =
    run_replica ~config:(crash_config (Replica.Mid_stream 5)) 7
  in
  Alcotest.(check bool) "crashed" true r.Replica.crashed;
  Alcotest.(check bool) "recovered" true (r.Replica.recovery_ticks <> None);
  Alcotest.(check bool) "backup finished the job" true
    (r.Replica.committed_backup > 0);
  assert_invariants r;
  assert_serializable sc initial r

let test_mid_checkpoint_crash () =
  let (sc, initial, r) =
    run_replica ~config:(crash_config (Replica.Mid_checkpoint 1)) 7
  in
  Alcotest.(check bool) "crashed" true r.Replica.crashed;
  (* the checkpoint died in the primary's NIC buffers *)
  Alcotest.(check bool) "a shipped checkpoint was lost" true
    (r.Replica.checkpoints_installed < r.Replica.checkpoints_sent);
  assert_invariants r;
  assert_serializable sc initial r

let test_mid_replay_degradation () =
  (* No checkpoints, so promotion must replay the whole log at one record
     per tick — long enough a window that live read-only queries are
     served stale in the meantime. *)
  let config =
    { Replica.default_config with
      Replica.checkpoint_every = 0;
      crash = Replica.Mid_replay 10 }
  in
  let (sc, initial, r) = run_replica ~config 2 in
  Alcotest.(check bool) "crashed" true r.Replica.crashed;
  Alcotest.(check bool) "replay actually happened" true
    (r.Replica.replayed > 0);
  Alcotest.(check bool) "stale reads served during failover" true
    (r.Replica.stale_served > 0);
  assert_invariants r;
  assert_serializable sc initial r

let test_exactly_once_under_heavy_loss () =
  (* Drop 1/3 under a crash: retries cross the failover boundary and the
     replicated dedup table must absorb them. *)
  let config =
    { Replica.default_config with
      Replica.drop_one_in = 3;
      crash = Replica.Mid_stream 8 }
  in
  let (sc, initial, r) = run_replica ~config 11 in
  Alcotest.(check bool) "crashed" true r.Replica.crashed;
  Alcotest.(check bool) "clients retried" true (r.Replica.client_retries > 0);
  assert_invariants r;
  assert_serializable sc initial r

let test_deterministic () =
  let (_, _, a) = run_replica ~config:(crash_config (Replica.Mid_stream 5)) 9 in
  let (_, _, b) = run_replica ~config:(crash_config (Replica.Mid_stream 5)) 9 in
  Alcotest.(check int) "same tick count" a.Replica.ticks b.Replica.ticks;
  Alcotest.(check int) "same transmissions"
    a.Replica.net.Fdb_net.Reliable.transmissions
    b.Replica.net.Fdb_net.Reliable.transmissions;
  Alcotest.(check bool) "same final db" true
    (Oracle.db_equal a.Replica.final b.Replica.final);
  Alcotest.(check bool) "same responses" true
    (a.Replica.responses = b.Replica.responses)

(* -- the Sim crash path ------------------------------------------------------ *)

let test_sim_crash_path () =
  (* Seeds 0, 1, 2 cover mid-stream, mid-checkpoint and mid-replay. *)
  List.iter
    (fun seed ->
      let sc = scenario seed in
      let faults = { Sim.default_faults with Sim.crash = true } in
      let o = Sim.run ~faults ~seed sc in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d serializable" seed)
        true
        (Oracle.accepted o.Sim.verdict);
      match o.Sim.recovery with
      | None -> Alcotest.fail "crash path must produce a recovery report"
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d crash fired" seed)
            true r.Replica.crashed)
    [ 0; 1; 2 ]

let () =
  Alcotest.run "replica"
    [
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "naive roundtrip" `Quick
            test_snapshot_naive_roundtrip;
          Alcotest.test_case "delta exploits sharing" `Quick
            test_snapshot_delta_exploits_sharing;
          Alcotest.test_case "rejects corruption" `Quick
            test_snapshot_rejects_corruption;
          Alcotest.test_case "trailing-garbage offset" `Quick
            test_snapshot_trailing_offset;
        ] );
      ( "failover",
        [
          Alcotest.test_case "no crash" `Quick test_no_crash;
          Alcotest.test_case "mid-stream crash" `Quick test_mid_stream_crash;
          Alcotest.test_case "mid-checkpoint crash" `Quick
            test_mid_checkpoint_crash;
          Alcotest.test_case "mid-replay degradation" `Quick
            test_mid_replay_degradation;
          Alcotest.test_case "exactly once under loss" `Quick
            test_exactly_once_under_heavy_loss;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ("sim", [ Alcotest.test_case "crash fault kind" `Quick test_sim_crash_path ]);
    ]
