lib/persistent/two3.mli: Meter Ordered
